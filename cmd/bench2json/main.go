// Command bench2json converts `go test -bench` text output on stdin into a
// JSON array on stdout, so CI can archive benchmark results as a
// machine-readable artifact and the perf trajectory of the sweep engine is
// tracked run over run.
//
// With -baseline it additionally acts as a regression guard: every parsed
// benchmark present in the baseline JSON (a previous bench2json output,
// committed in-repo) is compared by name, and the command exits non-zero
// when ns/op or allocs/op exceed baseline × -tolerance. A baseline entry
// with no counterpart in the input also fails — a renamed or de-patterned
// benchmark must force a baseline regeneration, not silently drop out of
// the guard. Faster-than-baseline runs always pass; improvements are
// adopted by re-committing the baseline file.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkSweep' -benchmem . | bench2json > BENCH_sweep.json
//	bench2json -baseline BENCH_sweep.json -tolerance 1.3 < bench_sweep.txt > new.json
//
// Context lines (goos/goarch/pkg/cpu) are attached to every subsequent
// result. Unparseable lines are ignored, so PASS/ok trailers and -v noise
// are harmless.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line plus the context it ran under.
type Result struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON (a previous bench2json output) to guard against")
	tolerance := flag.Float64("tolerance", 1.3, "fail when allocs/op exceeds baseline × tolerance (and ns/op, unless -time-tolerance overrides)")
	timeTolerance := flag.Float64("time-tolerance", 0, "separate tolerance for ns/op (0 = use -tolerance); wall-clock on shared runners is noisier than allocation counts")
	var speedups speedupFlags
	flag.Var(&speedups, "speedup", "assert a cross-row ratio on the CURRENT run, \"Slow/Fast>=R\": fail unless Slow's ns/op is at least R× Fast's; repeatable")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, os.Stderr, *baseline, *tolerance, *timeTolerance, speedups); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// speedupFlags collects repeated -speedup specs.
type speedupFlags []string

func (s *speedupFlags) String() string { return strings.Join(*s, ",") }

func (s *speedupFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(in io.Reader, out, errOut io.Writer, baseline string, tolerance, timeTolerance float64, speedups []string) error {
	results, err := Parse(bufio.NewScanner(in))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	// Speedup assertions judge the current run against itself, so they
	// hold even while a perf improvement is being adopted (the baseline
	// temporarily lags) and the comparison never mixes runner shapes.
	failed, err := Speedups(errOut, results, speedups)
	if err != nil {
		return err
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d speedup assertion(s) failed: %s", len(failed), strings.Join(failed, "; "))
	}
	if baseline == "" {
		return nil
	}
	if timeTolerance <= 0 {
		timeTolerance = tolerance
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("read -baseline: %w", err)
	}
	var base []Result
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse -baseline: %w", err)
	}
	if compared(base, results) == 0 {
		// A guard that matches nothing guards nothing: renamed benchmarks
		// or a drifted baseline must fail loudly, not pass silently.
		return fmt.Errorf("no benchmark in the input matches a name in %s; regenerate the baseline", baseline)
	}
	if missing := Missing(base, results); len(missing) > 0 {
		// The same applies per entry: a baseline benchmark the input no
		// longer runs (renamed, or dropped from the -bench pattern) would
		// otherwise stop being guarded without anyone noticing.
		return fmt.Errorf("baseline benchmark(s) missing from the input: %s; regenerate %s or widen the -bench pattern",
			strings.Join(missing, ", "), baseline)
	}
	// Every compared benchmark reports its measured-vs-baseline ratios,
	// pass or fail: the guard's verdict is binary, but the trajectory —
	// how close each metric drifts toward the tolerance — is what the CI
	// log is for.
	Report(errOut, base, results)
	regressions := Compare(base, results, timeTolerance, tolerance)
	for _, r := range regressions {
		fmt.Fprintln(errOut, "bench2json: REGRESSION:", r)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance of %s", len(regressions), baseline)
	}
	fmt.Fprintf(errOut, "bench2json: %d benchmark(s) within %.2fx time / %.2fx allocs of %s\n",
		compared(base, results), timeTolerance, tolerance, baseline)
	return nil
}

// Speedups evaluates "Slow/Fast>=R" assertions against the parsed
// results, logging the achieved ratio for each and returning the specs
// that failed. Names use the bare benchmark name (no GOMAXPROCS suffix).
// A spec naming a benchmark absent from the input is an error, not a
// pass: an assertion that matches nothing asserts nothing.
func Speedups(w io.Writer, results []Result, specs []string) (failed []string, err error) {
	byName := make(map[string]Result, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	for _, spec := range specs {
		names, thresh, ok := strings.Cut(spec, ">=")
		if !ok {
			return nil, fmt.Errorf("-speedup %q: want \"Slow/Fast>=R\"", spec)
		}
		slowName, fastName, ok := strings.Cut(names, "/")
		if !ok {
			return nil, fmt.Errorf("-speedup %q: want \"Slow/Fast>=R\"", spec)
		}
		want, perr := strconv.ParseFloat(strings.TrimSpace(thresh), 64)
		if perr != nil || want <= 0 {
			return nil, fmt.Errorf("-speedup %q: ratio %q is not a positive number", spec, thresh)
		}
		slow, ok := byName[strings.TrimSpace(slowName)]
		if !ok {
			return nil, fmt.Errorf("-speedup %q: benchmark %q not in the input", spec, slowName)
		}
		fast, ok := byName[strings.TrimSpace(fastName)]
		if !ok {
			return nil, fmt.Errorf("-speedup %q: benchmark %q not in the input", spec, fastName)
		}
		if fast.NsPerOp <= 0 || slow.NsPerOp <= 0 {
			return nil, fmt.Errorf("-speedup %q: missing ns/op on one side", spec)
		}
		got := slow.NsPerOp / fast.NsPerOp
		verdict := "ok"
		if got < want {
			verdict = "FAILED"
			failed = append(failed, fmt.Sprintf("%s (got %.2fx)", spec, got))
		}
		fmt.Fprintf(w, "bench2json: speedup %s over %s: %.2fx (want >= %.2fx) %s\n",
			fast.Name, slow.Name, got, want, verdict)
	}
	return failed, nil
}

// Report writes one line per compared benchmark with the measured-vs-
// baseline ratio of every guarded metric (ns/op and allocs/op), in input
// order: "1.00x" is flat, above 1 is slower/fatter than the baseline.
func Report(w io.Writer, base, cur []Result) {
	byName := make(map[string]Result, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		line := fmt.Sprintf("bench2json: %s:", c.Name)
		if b.NsPerOp > 0 {
			line += fmt.Sprintf(" time %.2fx (%.0f vs %.0f ns/op)", c.NsPerOp/b.NsPerOp, c.NsPerOp, b.NsPerOp)
		}
		if b.AllocsOp > 0 {
			line += fmt.Sprintf(" allocs %.2fx (%.0f vs %.0f allocs/op)", c.AllocsOp/b.AllocsOp, c.AllocsOp, b.AllocsOp)
		}
		fmt.Fprintln(w, line)
	}
}

// Compare matches new results against baseline results by benchmark name
// and returns a description of every metric exceeding its tolerance
// (timeTol for ns/op, allocTol for allocs/op). Benchmarks missing on
// either side are skipped: the guard only judges pairs it can actually
// compare — run (via the caller) demands at least one pair matched.
func Compare(base, cur []Result, timeTol, allocTol float64) []string {
	byName := make(map[string]Result, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	var regressions []string
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*timeTol {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx)",
				c.Name, c.NsPerOp, b.NsPerOp, c.NsPerOp/b.NsPerOp, timeTol))
		}
		if b.AllocsOp > 0 && c.AllocsOp > b.AllocsOp*allocTol {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f allocs/op vs baseline %.0f (%.2fx > %.2fx)",
				c.Name, c.AllocsOp, b.AllocsOp, c.AllocsOp/b.AllocsOp, allocTol))
		}
	}
	return regressions
}

// Missing returns the baseline names with no counterpart in the current
// results, in baseline order.
func Missing(base, cur []Result) []string {
	byName := make(map[string]bool, len(cur))
	for _, c := range cur {
		byName[c.Name] = true
	}
	var missing []string
	for _, b := range base {
		if !byName[b.Name] {
			missing = append(missing, b.Name)
		}
	}
	return missing
}

// compared counts the benchmark pairs the guard actually judged.
func compared(base, cur []Result) int {
	byName := make(map[string]bool, len(base))
	for _, b := range base {
		byName[b.Name] = true
	}
	n := 0
	for _, c := range cur {
		if byName[c.Name] {
			n++
		}
	}
	return n
}

// Parse consumes benchmark output line by line. Exported for the tests.
func Parse(sc *bufio.Scanner) ([]Result, error) {
	var (
		results      = []Result{}
		goos, goarch string
		pkg, cpu     string
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo ... FAIL"
		}
		r := Result{Iterations: iters, Goos: goos, Goarch: goarch, Pkg: pkg, CPU: cpu}
		r.Name, r.Procs = splitProcs(fields[0])
		// Remaining fields come in "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsOp = val
			}
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// splitProcs separates the "-8" GOMAXPROCS suffix from a benchmark name.
func splitProcs(name string) (string, int) {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i], p
		}
	}
	return name, 0
}
