package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepE6Sequential      	      10	  72038054 ns/op	 3059900 B/op	    8962 allocs/op
BenchmarkSweepE6AtlasSharded-8  	      10	  33594313 ns/op	 2051253 B/op	     683 allocs/op
PASS
ok  	repro	2.358s
`

func TestParse(t *testing.T) {
	results, err := Parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkSweepE6Sequential" || r.Procs != 0 {
		t.Errorf("first result name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 10 || r.NsPerOp != 72038054 || r.BytesPerOp != 3059900 || r.AllocsOp != 8962 {
		t.Errorf("first result metrics wrong: %+v", r)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" || !strings.Contains(r.CPU, "Xeon") {
		t.Errorf("context not attached: %+v", r)
	}
	s := results[1]
	if s.Name != "BenchmarkSweepE6AtlasSharded" || s.Procs != 8 {
		t.Errorf("procs suffix not split: %q/%d", s.Name, s.Procs)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noisy := "=== RUN TestX\nBenchmarkBroken FAIL\nrandom text\nBenchmarkOK 3 100 ns/op\n"
	results, err := Parse(bufio.NewScanner(strings.NewReader(noisy)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkOK" || results[0].NsPerOp != 100 {
		t.Fatalf("noise handling wrong: %+v", results)
	}
}

func TestParseEmpty(t *testing.T) {
	results, err := Parse(bufio.NewScanner(strings.NewReader("")))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("empty input must yield an empty (non-nil) slice, got %#v", results)
	}
}
