package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweepE6Sequential      	      10	  72038054 ns/op	 3059900 B/op	    8962 allocs/op
BenchmarkSweepE6AtlasSharded-8  	      10	  33594313 ns/op	 2051253 B/op	     683 allocs/op
PASS
ok  	repro	2.358s
`

func TestParse(t *testing.T) {
	results, err := Parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkSweepE6Sequential" || r.Procs != 0 {
		t.Errorf("first result name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 10 || r.NsPerOp != 72038054 || r.BytesPerOp != 3059900 || r.AllocsOp != 8962 {
		t.Errorf("first result metrics wrong: %+v", r)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" || !strings.Contains(r.CPU, "Xeon") {
		t.Errorf("context not attached: %+v", r)
	}
	s := results[1]
	if s.Name != "BenchmarkSweepE6AtlasSharded" || s.Procs != 8 {
		t.Errorf("procs suffix not split: %q/%d", s.Name, s.Procs)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noisy := "=== RUN TestX\nBenchmarkBroken FAIL\nrandom text\nBenchmarkOK 3 100 ns/op\n"
	results, err := Parse(bufio.NewScanner(strings.NewReader(noisy)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkOK" || results[0].NsPerOp != 100 {
		t.Fatalf("noise handling wrong: %+v", results)
	}
}

func TestParseEmpty(t *testing.T) {
	results, err := Parse(bufio.NewScanner(strings.NewReader("")))
	if err != nil {
		t.Fatal(err)
	}
	if results == nil || len(results) != 0 {
		t.Fatalf("empty input must yield an empty (non-nil) slice, got %#v", results)
	}
}

// TestCompare covers the regression guard's verdicts: within tolerance,
// time regression, alloc regression, and unmatched names skipped.
func TestCompare(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkSweepE6AtlasSharded", NsPerOp: 10e6, AllocsOp: 90},
		{Name: "BenchmarkGone", NsPerOp: 5e6},
	}
	cur := []Result{
		{Name: "BenchmarkSweepE6AtlasSharded", NsPerOp: 12e6, AllocsOp: 100},
		{Name: "BenchmarkNew", NsPerOp: 99e6},
	}
	if regs := Compare(base, cur, 1.3, 1.3); len(regs) != 0 {
		t.Fatalf("within tolerance flagged: %v", regs)
	}
	cur[0].NsPerOp = 14e6
	if regs := Compare(base, cur, 1.3, 1.3); len(regs) != 1 {
		t.Fatalf("time regression not flagged exactly once: %v", regs)
	}
	cur[0].AllocsOp = 200
	if regs := Compare(base, cur, 1.3, 1.3); len(regs) != 2 {
		t.Fatalf("alloc regression not flagged: %v", regs)
	}
	// Faster-than-baseline never fails.
	cur[0] = Result{Name: "BenchmarkSweepE6AtlasSharded", NsPerOp: 1e6, AllocsOp: 10}
	if regs := Compare(base, cur, 1.3, 1.3); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

// TestRunBaselineGuard exercises the end-to-end -baseline path: JSON still
// lands on stdout, and the exit error fires only on regression.
func TestRunBaselineGuard(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	if err := os.WriteFile(baseline, []byte(`[{"name":"BenchmarkX","iterations":3,"ns_per_op":100,"allocs_per_op":5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	bench := "BenchmarkX   3   110 ns/op   80 B/op   5 allocs/op\n"
	var out, errOut strings.Builder
	if err := run(strings.NewReader(bench), &out, &errOut, baseline, 1.3, 0, nil); err != nil {
		t.Fatalf("within-tolerance run failed: %v (stderr %q)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "BenchmarkX") {
		t.Fatalf("stdout JSON missing result: %q", out.String())
	}
	// A passing run still reports how close every metric sits to the
	// tolerance: 110 vs 100 ns/op is 1.10x, 5 vs 5 allocs is 1.00x.
	if !strings.Contains(errOut.String(), "time 1.10x (110 vs 100 ns/op)") ||
		!strings.Contains(errOut.String(), "allocs 1.00x (5 vs 5 allocs/op)") {
		t.Fatalf("stderr missing per-benchmark ratios: %q", errOut.String())
	}
	bench = "BenchmarkX   3   500 ns/op   80 B/op   5 allocs/op\n"
	out.Reset()
	errOut.Reset()
	err := run(strings.NewReader(bench), &out, &errOut, baseline, 1.3, 0, nil)
	if err == nil {
		t.Fatal("regressed run returned nil error")
	}
	if !strings.Contains(errOut.String(), "REGRESSION") {
		t.Fatalf("stderr missing regression report: %q", errOut.String())
	}
	// The ratio line accompanies the failure too — the log shows 5.00x,
	// not just a verdict.
	if !strings.Contains(errOut.String(), "time 5.00x (500 vs 100 ns/op)") {
		t.Fatalf("stderr missing failing ratio: %q", errOut.String())
	}
}

// TestReportSkipsUnmatched: ratio lines only cover pairs the guard judges.
func TestReportSkipsUnmatched(t *testing.T) {
	base := []Result{{Name: "BenchmarkA", NsPerOp: 100, AllocsOp: 4}}
	cur := []Result{
		{Name: "BenchmarkA", NsPerOp: 90, AllocsOp: 4},
		{Name: "BenchmarkNew", NsPerOp: 50},
	}
	var sb strings.Builder
	Report(&sb, base, cur)
	if !strings.Contains(sb.String(), "BenchmarkA: time 0.90x (90 vs 100 ns/op) allocs 1.00x (4 vs 4 allocs/op)") {
		t.Errorf("report missing matched ratios: %q", sb.String())
	}
	if strings.Contains(sb.String(), "BenchmarkNew") {
		t.Errorf("report covered a benchmark absent from the baseline: %q", sb.String())
	}
}

// TestRunBaselineMissingEntryFails pins the per-entry self-check: a
// baseline benchmark absent from the input (renamed, or dropped from the
// -bench pattern) must fail the guard even when other entries still match.
func TestRunBaselineMissingEntryFails(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	base := `[{"name":"BenchmarkX","iterations":3,"ns_per_op":100,"allocs_per_op":5},
	          {"name":"BenchmarkGone","iterations":3,"ns_per_op":100,"allocs_per_op":5}]`
	if err := os.WriteFile(baseline, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run(strings.NewReader("BenchmarkX   3   100 ns/op   80 B/op   5 allocs/op\n"), &out, &errOut, baseline, 1.3, 0, nil)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("missing baseline entry not reported: %v", err)
	}
}

// TestRunBaselineNoMatchFails pins the guard's self-check: a baseline that
// matches none of the parsed benchmarks must fail instead of silently
// guarding nothing, and a looser -time-tolerance must apply to ns/op only.
func TestRunBaselineNoMatchFails(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	if err := os.WriteFile(baseline, []byte(`[{"name":"BenchmarkRenamed","iterations":3,"ns_per_op":100}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run(strings.NewReader("BenchmarkX   3   110 ns/op\n"), &out, &errOut, baseline, 1.3, 0, nil)
	if err == nil || !strings.Contains(err.Error(), "no benchmark") {
		t.Fatalf("zero-match guard passed silently: %v", err)
	}

	if err := os.WriteFile(baseline, []byte(`[{"name":"BenchmarkX","iterations":3,"ns_per_op":100,"allocs_per_op":5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	// 1.8x slower: fails at the default 1.3 but passes with -time-tolerance 2.
	out.Reset()
	errOut.Reset()
	if err := run(strings.NewReader("BenchmarkX   3   180 ns/op   80 B/op   5 allocs/op\n"), &out, &errOut, baseline, 1.3, 2.0, nil); err != nil {
		t.Fatalf("time-tolerance override not applied: %v", err)
	}
	// ...but allocs still fail at the strict tolerance.
	out.Reset()
	errOut.Reset()
	if err := run(strings.NewReader("BenchmarkX   3   100 ns/op   80 B/op   50 allocs/op\n"), &out, &errOut, baseline, 1.3, 2.0, nil); err == nil {
		t.Fatal("alloc regression passed under loose time tolerance")
	}
}

// TestRunSpeedupAssertions: -speedup judges cross-row ratios of the
// current run itself, independent of any baseline.
func TestRunSpeedupAssertions(t *testing.T) {
	bench := "BenchmarkSlow   3   1000 ns/op\nBenchmarkFast-2   3   80 ns/op\n"
	var out, errOut strings.Builder
	spec := []string{"BenchmarkSlow/BenchmarkFast>=10"}
	if err := run(strings.NewReader(bench), &out, &errOut, "", 1.3, 0, spec); err != nil {
		t.Fatalf("12.5x run failed a >=10x assertion: %v (stderr %q)", err, errOut.String())
	}
	if !strings.Contains(errOut.String(), "12.50x (want >= 10.00x) ok") {
		t.Fatalf("stderr missing achieved ratio: %q", errOut.String())
	}
	out.Reset()
	errOut.Reset()
	spec = []string{"BenchmarkSlow/BenchmarkFast>=20"}
	err := run(strings.NewReader(bench), &out, &errOut, "", 1.3, 0, spec)
	if err == nil || !strings.Contains(err.Error(), "speedup assertion") {
		t.Fatalf("12.5x run passed a >=20x assertion: %v", err)
	}
	// A spec naming an absent benchmark must error, not silently pass.
	out.Reset()
	errOut.Reset()
	spec = []string{"BenchmarkSlow/BenchmarkGone>=2"}
	err = run(strings.NewReader(bench), &out, &errOut, "", 1.3, 0, spec)
	if err == nil || !strings.Contains(err.Error(), `"BenchmarkGone"`) {
		t.Fatalf("assertion on absent benchmark did not error: %v", err)
	}
	// Malformed specs are configuration errors.
	for _, bad := range []string{"BenchmarkSlow>=2", "BenchmarkSlow/BenchmarkFast", "BenchmarkSlow/BenchmarkFast>=-1"} {
		if err := run(strings.NewReader(bench), &out, &errOut, "", 1.3, 0, []string{bad}); err == nil {
			t.Errorf("malformed -speedup %q accepted", bad)
		}
	}
}
