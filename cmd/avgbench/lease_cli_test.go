package main

import (
	"context"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// TestMain lets this test binary impersonate the real avgbench: with
// AVGBENCH_BE_MAIN=1 it runs main() on its arguments and exits. The
// SIGKILL test below uses that to spawn a genuine executor process it can
// kill without mercy, instead of simulating death with context cancels.
func TestMain(m *testing.M) {
	if os.Getenv("AVGBENCH_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestLeaseFlagValidation pins the leased-mode flag discipline.
func TestLeaseFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-e", "E6", "-lease"},                                         // no -store
		{"-e", "E6", "-store", dir},                                    // no schedule
		{"-e", "E6", "-store", dir, "-lease", "-shard", "0/2"},         // two schedules
		{"-e", "all", "-store", dir, "-lease"},                         // needs one experiment
		{"-e", "E3", "-store", dir, "-lease"},                          // E3 not shardable
		{"-e", "E6", "-store", dir, "-lease", "-checkpoint", "c"},      // store IS the checkpoint
		{"-e", "E6", "-store", dir, "-lease", "-out", "s.json"},        // store replaces shard files
		{"-e", "E6", "-worker", "w"},                                   // -worker without -store
		{"-e", "E6", "-grains", "4"},                                   // -grains without -store
		{"-e", "E6", "-store", dir, "-lease", "-worker", "bad worker"}, // not store-name-safe
		{"-e", "E6", "-store", dir, "-shard", "2/2"},                   // static index out of range
		{"-e", "E6", "-sizes", "zz", "-store", dir, "-lease"},          // bad sizes still fail fast
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestLeaseRunCLI: the in-process happy path — one -lease executor covers
// the space and a second invocation joining the finished run only finds
// duplicates, both printing the same table.
func TestLeaseRunCLI(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-e", "E6", "-sizes", "16,24", "-trials", "6", "-seed", "9", "-store", dir}
	if err := run(append(common, "-lease", "-worker", "first", "-grains", "4")); err != nil {
		t.Fatalf("lease run: %v", err)
	}
	if err := run(append(common, "-lease", "-worker", "second", "-grains", "4")); err != nil {
		t.Fatalf("joining a finished run: %v", err)
	}
	// The store's completions fold to the single-process bytes.
	e, err := experiments.Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Seed: 9, Sizes: []int{16, 24}, Trials: 6}
	want, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sweep.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := experiments.MergeLeased(e, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Errorf("leased CLI table differs from single process\nwant:\n%s\ngot:\n%s",
			want.Render(), got.Render())
	}
}

// TestLeaseSurvivesSIGKILL is the chaos harness's process-level leg: a real
// executor process is SIGKILLed mid-run — after it has durably committed at
// least one grain, before it could finish — and a rescuer started against
// the same store must adopt the corpse's lease, finish the space, and
// produce the single-process bytes. No cooperation from the victim: SIGKILL
// cannot be caught, so whatever the store holds at death is the recovery
// contract.
func TestLeaseSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	dir := t.TempDir()
	args := []string{"-e", "E2", "-sizes", "8192,16384", "-trials", "48", "-seed", "21",
		"-store", dir, "-lease"}

	victim := exec.Command(os.Args[0], append(args, "-worker", "victim", "-workers", "1")...)
	victim.Env = append(os.Environ(), "AVGBENCH_BE_MAIN=1")
	victim.Stdout = nil
	victim.Stderr = nil
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the first durable completion, then kill without warning.
	deadline := time.Now().Add(30 * time.Second)
	for countDoneObjects(t, dir) == 0 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatal("victim produced no completion records within 30s")
		}
		time.Sleep(500 * time.Microsecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := victim.Wait(); err == nil {
		// The whole run fit between our poll and the kill; the rescue below
		// still must reproduce the bytes, but say the kill landed late.
		t.Log("victim finished before SIGKILL landed; rescue degenerates to a duplicate join")
	}

	if err := run(append(args, "-worker", "rescuer")); err != nil {
		t.Fatalf("rescuer: %v", err)
	}

	e, err := experiments.Get("E2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Seed: 21, Sizes: []int{8192, 16384}, Trials: 48}
	want, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sweep.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := experiments.MergeLeased(e, cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != got.Render() {
		t.Errorf("post-SIGKILL table differs from single process\nwant:\n%s\ngot:\n%s",
			want.Render(), got.Render())
	}
}

// countDoneObjects counts the durable per-grain completion records under a
// DirStore root, across all sweeps of the run.
func countDoneObjects(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(filepath.ToSlash(path), "/done/") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}
