// Command avgbench regenerates the paper's experiment tables (E1..E7, see
// DESIGN.md for the index).
//
// Usage:
//
//	avgbench -e E2              # one experiment, default sweep
//	avgbench -e all -seed 7     # everything, reproducibly
//	avgbench -e E4 -sizes 64,1024,65536 -trials 3
//	avgbench -e E3 -csv         # machine-readable output
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "avgbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avgbench", flag.ContinueOnError)
	expID := fs.String("e", "all", "experiment ID (E1..E9) or 'all'")
	seed := fs.Int64("seed", 1, "random seed (equal seeds reproduce tables)")
	sizesFlag := fs.String("sizes", "", "comma-separated n sweep override")
	trials := fs.Int("trials", 0, "permutations sampled per size (0 = default)")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %s\n    %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials}
	if *sizesFlag != "" {
		for _, part := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("parse -sizes: %w", err)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*expID, "all") {
		selected = experiments.All()
	} else {
		e, err := experiments.Get(strings.ToUpper(*expID))
		if err != nil {
			return err
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		fmt.Printf("== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
		tab, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *asCSV {
			if err := tab.WriteCSV(csv.NewWriter(os.Stdout)); err != nil {
				return err
			}
		} else {
			fmt.Println(tab.Render())
		}
	}
	return nil
}
