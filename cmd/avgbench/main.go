// Command avgbench regenerates the paper's experiment tables (E1..E12, see
// EXPERIMENTS.md for the index). Every experiment runs on the sharded sweep
// engine (internal/sweep), so full-size tables use all cores; equal seeds
// emit identical tables at any worker count.
//
// Usage:
//
//	avgbench -e E2                  # one experiment, default sweep
//	avgbench -e all -seed 7         # everything, reproducibly
//	avgbench -e E4 -sizes 64,1024,65536 -trials 3
//	avgbench -e E10 -sizes 8,9,10   # exact n! enumeration vs sampling
//	avgbench -e E6 -workers 4       # bound the worker pool
//	avgbench -e all -timeout 30s    # give up (with an error) after 30s
//	avgbench -e E3 -csv             # machine-readable output
//	avgbench -e all -json          	# machine-readable output, with metadata
//	avgbench -e E6 -noatlas         # force the ball-builder path (perf bisection)
//	avgbench -e E6 -nokernels       # keep the atlas, skip the flat decision kernels
//	avgbench -e E11 -backend implicit    # closed-form ball synthesis: O(workers) memory at n=10^7
//	avgbench -e E2 -backend builder      # pin any backend; tables are byte-identical across them
//	avgbench -e E2 -streamids            # streaming Feistel identifier draws (a different, backend-invariant family)
//	avgbench -e E10 -sizes 13,14 -quotient   # symmetry-quotient enumeration: bit-identical tables, n!/2n of the work
//	avgbench -e E12                      # quotient vs full n! fold, diffed field by field
//	avgbench -e E6 -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// Distributed runs (shardable experiments — those exposing their sweeps):
//
//	avgbench -e E6 -shard 0/2 -out s0.json   # process 1 of 2
//	avgbench -e E6 -shard 1/2 -out s1.json   # process 2 of 2
//	sweepmerge s0.json s1.json               # byte-identical final table
//	avgbench -e E6 -checkpoint e6.ckpt       # restartable: kill, rerun, resume
//
// Leased runs (work-stealing over a shared store directory): start any
// number of executors against one store, at any time; they lease
// grain-aligned trial ranges, steal straggler tails, and re-execute dead
// workers' claims. Every executor that returns prints the same bytes:
//
//	avgbench -e E6 -store run/ -lease          # executor 1 (any machine)
//	avgbench -e E6 -store run/ -lease          # executor 2, started later
//	sweepmerge -store run/                     # or merge without executing
//	avgbench -e E6 -store run/ -shard 0/2      # static i-of-m lease schedule
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		// Typed failures exit distinctly: 2 = incomplete run (recoverable,
		// finish the executors and retry), 3 = corrupt data (inspect the
		// named record), 1 = anything else.
		os.Exit(cli.Report(os.Stderr, "avgbench", err))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("avgbench", flag.ContinueOnError)
	expID := fs.String("e", "all", "experiment ID (E1..E12) or 'all'")
	seed := fs.Int64("seed", 1, "random seed (equal seeds reproduce tables)")
	sizesFlag := fs.String("sizes", "", "comma-separated n sweep override")
	trials := fs.Int("trials", 0, "permutations sampled per size (0 = default)")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "abort after this long (0 = no limit)")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	asJSON := fs.Bool("json", false, "emit JSON (tables plus metadata)")
	list := fs.Bool("list", false, "list experiments and exit")
	noAtlas := fs.Bool("noatlas", false, "disable the shared ball-atlas fast path (identical tables, builder-path timing)")
	noKernels := fs.Bool("nokernels", false, "disable the flat decision kernels over the atlas (identical tables, view-path timing)")
	backendFlag := fs.String("backend", "", "sweep ball-sourcing backend: atlas, builder, or implicit (empty = auto; identical tables across backends)")
	streamIDs := fs.Bool("streamids", false, "draw identifiers from the streaming Feistel permutation family instead of the buffered shuffle (different, backend-invariant tables)")
	quotient := fs.Bool("quotient", false, "enumerate exhaustive sweeps over canonical orbit representatives only (symmetric families; bit-identical tables, n!/|G| of the work, lifts E10's size cap to 14)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the runs to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file after the runs")
	shardFlag := fs.String("shard", "", "run only shard I/M (0-based, e.g. 0/2) of one shardable experiment; requires -out")
	outFlag := fs.String("out", "", "file the shard's partial aggregates are written to (merge with sweepmerge)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: progress is committed after every block and an interrupted run resumes from it (one shardable experiment)")
	storeFlag := fs.String("store", "", "shared store directory for a leased run; executors pointing at the same store cooperate on one experiment (with -lease or -shard)")
	leaseFlag := fs.Bool("lease", false, "join the store's work-stealing leased run: lease uncovered trial ranges, steal straggler tails, print the merged table when the space is covered; requires -store")
	workerFlag := fs.String("worker", "", "this executor's id in the leased run (default host-pid)")
	grainsFlag := fs.Int("grains", 0, "grains each size's trial space is quantized into for leasing (0 = engine default; all executors of a run must agree)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %s\n    %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}
	if *asCSV && *asJSON {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}

	// Backend names fail fast, before any sweep starts, with the typed
	// error; the NoAtlas conflict mirrors the engine's own validation.
	backend, err := sweep.ParseBackend(*backendFlag)
	if err != nil {
		return err
	}
	if *noAtlas && backend != sweep.BackendAuto && backend != sweep.BackendBuilder {
		return fmt.Errorf("-noatlas conflicts with -backend %s; drop one of the two", backend)
	}

	cfg := experiments.Config{Seed: *seed, Trials: *trials, Workers: *workers,
		NoAtlas: *noAtlas, NoKernels: *noKernels, Backend: string(backend),
		StreamIDs: *streamIDs, Quotient: *quotient}
	if *sizesFlag != "" {
		for _, part := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("parse -sizes: %w", err)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*expID, "all") {
		selected = experiments.All()
	} else {
		// Unknown IDs fail here, before any sweep starts, with the typed
		// error listing every registered experiment.
		e, err := experiments.Get(strings.ToUpper(*expID))
		if err != nil {
			return err
		}
		selected = []experiments.Experiment{e}
	}

	// Distributed-mode flag discipline: sharding writes aggregates, not
	// tables, and both sharding and checkpointing are per-experiment.
	if *shardFlag == "" && *outFlag != "" {
		return fmt.Errorf("-out only makes sense with -shard")
	}
	if *shardFlag != "" || *checkpoint != "" || *storeFlag != "" || *leaseFlag {
		if len(selected) != 1 {
			return fmt.Errorf("-shard/-checkpoint/-store/-lease need a single -e experiment, not %q", *expID)
		}
		if !selected[0].Shardable() {
			return fmt.Errorf("%s does not expose its sweeps; it cannot run sharded, checkpointed or leased", selected[0].ID)
		}
	}
	// Leased-mode flag discipline: the store replaces both the checkpoint
	// (progress lives in per-grain completion records) and the shard file
	// (sweepmerge -store collects from the store directly).
	if *leaseFlag && *storeFlag == "" {
		return fmt.Errorf("-lease needs -store, the directory the executors share")
	}
	if *leaseFlag && *shardFlag != "" {
		return fmt.Errorf("-lease (work stealing) and -shard (static split) are mutually exclusive schedules")
	}
	if *storeFlag != "" {
		if !*leaseFlag && *shardFlag == "" {
			return fmt.Errorf("-store needs a schedule: -lease (work stealing) or -shard I/M (static)")
		}
		if *checkpoint != "" {
			return fmt.Errorf("-store and -checkpoint are mutually exclusive; leased progress is checkpointed in the store's completion records")
		}
		if *outFlag != "" {
			return fmt.Errorf("-store and -out are mutually exclusive; merge a leased run with sweepmerge -store")
		}
	}
	if *storeFlag == "" && (*workerFlag != "" || *grainsFlag != 0) {
		return fmt.Errorf("-worker/-grains only make sense with -store")
	}
	if *shardFlag != "" && *storeFlag == "" {
		if *outFlag == "" {
			return fmt.Errorf("-shard needs -out to store the partial aggregates (or -store for a leased run)")
		}
		if *asCSV || *asJSON {
			return fmt.Errorf("-shard writes aggregates, not tables; drop -csv/-json and render via sweepmerge")
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Profiling hooks: hot-path regressions should be diagnosable from a
	// released binary without editing code.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("create -cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("create -memprofile: %w", err)
		}
		defer func() {
			// Snapshot after the runs, with the dust settled, so the
			// profile reflects retained allocations.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "avgbench: write heap profile:", err)
			}
			f.Close()
		}()
	}

	// jsonTable pairs an experiment's metadata with its rendered table for
	// the machine-readable output mode.
	type jsonTable struct {
		ID    string             `json:"id"`
		Title string             `json:"title"`
		Claim string             `json:"claim"`
		Table *experiments.Table `json:"table"`
	}

	// Leased mode: join (or start) the store's run for this experiment.
	// Dynamic executors (-lease) return only once the whole trial space is
	// covered, so they can merge and print the final table themselves;
	// static ones (-shard I/M) exit after their own slice and leave the
	// merge to sweepmerge -store, like the shard-file flow.
	if *storeFlag != "" {
		st, err := sweep.NewDirStore(*storeFlag)
		if err != nil {
			return err
		}
		opts := sweep.LeaseOptions{Worker: *workerFlag, GrainsPerSize: *grainsFlag}
		if opts.Worker == "" {
			opts.Worker = defaultWorker()
		}
		if *shardFlag != "" {
			shard, err := parseShard(*shardFlag)
			if err != nil {
				return err
			}
			opts.Static = shard
		}
		e := selected[0]
		stats, err := experiments.RunLeasedSweeps(ctx, e, cfg, st, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "avgbench: %s leased run in %s as %s: %d grains (%d duplicate), %d claims, %d steals, %d adopted, %d speculated\n",
			e.ID, *storeFlag, opts.Worker, stats.Grains, stats.Duplicates, stats.Claims, stats.Steals, stats.Adopted, stats.Speculated)
		if *shardFlag != "" {
			// This executor only owes its own slice; the run may still be
			// incomplete until every static peer has finished.
			fmt.Fprintf(os.Stderr, "avgbench: merge with: sweepmerge -store %s\n", *storeFlag)
			return nil
		}
		tab, err := experiments.MergeLeased(e, cfg, st)
		if err != nil {
			return err
		}
		switch {
		case *asJSON:
			out := []jsonTable{{ID: e.ID, Title: e.Title, Claim: e.Claim, Table: tab}}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(out)
		case *asCSV:
			return tab.WriteCSV(csv.NewWriter(os.Stdout))
		default:
			fmt.Printf("== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
			fmt.Println(tab.Render())
		}
		return nil
	}

	// Shard mode: execute this process's slice of the trial space and
	// write the partial aggregates; sweepmerge renders the final table
	// once every shard file exists. RunShardToFile opens -out before the
	// run (bad paths fail fast) and keeps any -checkpoint until the shard
	// file is durably written, so a crash never strands completed work.
	if *shardFlag != "" {
		shard, err := parseShard(*shardFlag)
		if err != nil {
			return err
		}
		if err := experiments.RunShardToFile(ctx, selected[0], cfg, shard, *checkpoint, *outFlag); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "avgbench: %s shard %d/%d aggregates written to %s\n",
			selected[0].ID, shard.Index, shard.Count, *outFlag)
		return nil
	}

	var jsonOut []jsonTable

	for _, e := range selected {
		if !*asJSON {
			fmt.Printf("== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
		}
		var tab *experiments.Table
		var err error
		if *checkpoint != "" {
			// The restartable path: identical bytes to e.Run, with progress
			// committed after every block.
			var results []*sweep.Result
			if results, err = experiments.RunSweeps(ctx, e, cfg, sweep.Shard{}, *checkpoint); err == nil {
				tab, err = e.Tabulate(cfg, results)
			}
		} else {
			tab, err = e.Run(ctx, cfg)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch {
		case *asJSON:
			jsonOut = append(jsonOut, jsonTable{ID: e.ID, Title: e.Title, Claim: e.Claim, Table: tab})
		case *asCSV:
			if err := tab.WriteCSV(csv.NewWriter(os.Stdout)); err != nil {
				return err
			}
		default:
			fmt.Println(tab.Render())
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(jsonOut)
	}
	return nil
}

// defaultWorker derives a store-name-safe executor id from the host name
// and pid — unique enough for executors that share a store the intended
// way (one per process), and self-describing in `ls <store>/…/lease/`.
func defaultWorker() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '-'
	}, host)
	return fmt.Sprintf("%s-%d", safe, os.Getpid())
}

// parseShard parses an "I/M" flag value (0-based index I of M shards).
func parseShard(s string) (sweep.Shard, error) {
	is, ms, ok := strings.Cut(s, "/")
	if !ok {
		return sweep.Shard{}, fmt.Errorf("parse -shard %q: want I/M, e.g. 0/2", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(is))
	if err != nil {
		return sweep.Shard{}, fmt.Errorf("parse -shard index: %w", err)
	}
	count, err := strconv.Atoi(strings.TrimSpace(ms))
	if err != nil {
		return sweep.Shard{}, fmt.Errorf("parse -shard count: %w", err)
	}
	if count < 1 || idx < 0 || idx >= count {
		return sweep.Shard{}, fmt.Errorf("-shard %q out of range: need 0 <= I < M", s)
	}
	return sweep.Shard{Index: idx, Count: count}, nil
}
