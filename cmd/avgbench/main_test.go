package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16,64"}); err != nil {
		t.Errorf("E3: %v", err)
	}
}

func TestRunLowercaseID(t *testing.T) {
	if err := run([]string{"-e", "e1", "-sizes", "16", "-trials", "1"}); err != nil {
		t.Errorf("lowercase id: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16", "-csv"}); err != nil {
		t.Errorf("csv: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-sizes", "abc"}); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-csv", "-json"}); err == nil {
		t.Error("-csv together with -json accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-e", "E1", "-sizes", "16", "-trials", "1", "-json"}); err != nil {
		t.Errorf("json: %v", err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run([]string{"-e", "E6", "-sizes", "16,32", "-trials", "4", "-workers", "3"}); err != nil {
		t.Errorf("workers: %v", err)
	}
}

func TestRunNoAtlas(t *testing.T) {
	if err := run([]string{"-e", "E6", "-sizes", "16,32", "-trials", "3", "-noatlas"}); err != nil {
		t.Errorf("noatlas: %v", err)
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	if err := run([]string{"-e", "E1", "-sizes", "32", "-trials", "1",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatalf("profiled run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunProfileErrors(t *testing.T) {
	if err := run([]string{"-e", "E1", "-sizes", "16", "-cpuprofile", "/nonexistent-dir/x.prof"}); err == nil {
		t.Error("unwritable -cpuprofile accepted")
	}
	if err := run([]string{"-e", "E1", "-sizes", "16", "-trials", "1", "-memprofile", "/nonexistent-dir/x.prof"}); err == nil {
		t.Error("unwritable -memprofile accepted")
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	// A 1ns budget must abort the run with an error instead of hanging.
	if err := run([]string{"-e", "E2", "-sizes", "1024,2048", "-timeout", "1ns"}); err == nil {
		t.Error("expired timeout produced no error")
	}
}
