package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16,64"}); err != nil {
		t.Errorf("E3: %v", err)
	}
}

func TestRunLowercaseID(t *testing.T) {
	if err := run([]string{"-e", "e1", "-sizes", "16", "-trials", "1"}); err != nil {
		t.Errorf("lowercase id: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16", "-csv"}); err != nil {
		t.Errorf("csv: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-sizes", "abc"}); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-csv", "-json"}); err == nil {
		t.Error("-csv together with -json accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-e", "E1", "-sizes", "16", "-trials", "1", "-json"}); err != nil {
		t.Errorf("json: %v", err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run([]string{"-e", "E6", "-sizes", "16,32", "-trials", "4", "-workers", "3"}); err != nil {
		t.Errorf("workers: %v", err)
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	// A 1ns budget must abort the run with an error instead of hanging.
	if err := run([]string{"-e", "E2", "-sizes", "1024,2048", "-timeout", "1ns"}); err == nil {
		t.Error("expired timeout produced no error")
	}
}
