package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16,64"}); err != nil {
		t.Errorf("E3: %v", err)
	}
}

func TestRunLowercaseID(t *testing.T) {
	if err := run([]string{"-e", "e1", "-sizes", "16", "-trials", "1"}); err != nil {
		t.Errorf("lowercase id: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16", "-csv"}); err != nil {
		t.Errorf("csv: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-sizes", "abc"}); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
