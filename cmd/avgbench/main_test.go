package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16,64"}); err != nil {
		t.Errorf("E3: %v", err)
	}
}

func TestRunLowercaseID(t *testing.T) {
	if err := run([]string{"-e", "e1", "-sizes", "16", "-trials", "1"}); err != nil {
		t.Errorf("lowercase id: %v", err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-e", "E3", "-sizes", "16", "-csv"}); err != nil {
		t.Errorf("csv: %v", err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Errorf("list: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-e", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-sizes", "abc"}); err == nil {
		t.Error("bad sizes accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-csv", "-json"}); err == nil {
		t.Error("-csv together with -json accepted")
	}
}

// TestRunUnknownIDFailsFastWithMenu: an unknown -e must fail before any
// sweep starts, with the typed error listing every registered experiment.
func TestRunUnknownIDFailsFastWithMenu(t *testing.T) {
	err := run([]string{"-e", "E99"})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var ue *experiments.UnknownExperimentError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T is not *experiments.UnknownExperimentError", err)
	}
	for _, id := range []string{"E1", "E2", "E9", "E10"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not list %s", err, id)
		}
	}
}

// TestShardFlagValidation pins the distributed-mode flag discipline.
func TestShardFlagValidation(t *testing.T) {
	out := filepath.Join(t.TempDir(), "s.json")
	cases := [][]string{
		{"-e", "E6", "-shard", "0/2"},                                 // no -out
		{"-e", "E6", "-out", out},                                     // -out without -shard
		{"-e", "E6", "-shard", "2/2", "-out", out},                    // index out of range
		{"-e", "E6", "-shard", "0", "-out", out},                      // malformed
		{"-e", "E6", "-shard", "x/2", "-out", out},                    // malformed
		{"-e", "all", "-shard", "0/2", "-out", out},                   // needs one experiment
		{"-e", "E3", "-shard", "0/2", "-out", out},                    // E3 not shardable
		{"-e", "E6", "-shard", "0/2", "-out", out, "-csv"},            // tables come from sweepmerge
		{"-e", "all", "-checkpoint", filepath.Join(t.TempDir(), "c")}, // checkpoint per experiment
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestShardRunWritesMergeableFile: the full CLI path — two shard runs, one
// merge — produces an experiment table from the partial files.
func TestShardRunWritesMergeableFile(t *testing.T) {
	dir := t.TempDir()
	s0, s1 := filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")
	common := []string{"-e", "E6", "-sizes", "16,24", "-trials", "6", "-seed", "9"}
	if err := run(append(common, "-shard", "0/2", "-out", s0)); err != nil {
		t.Fatalf("shard 0/2: %v", err)
	}
	if err := run(append(common, "-shard", "1/2", "-out", s1, "-workers", "3")); err != nil {
		t.Fatalf("shard 1/2: %v", err)
	}
	var files []*experiments.ShardFile
	for _, p := range []string{s0, s1} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		sf, err := experiments.ReadShardFile(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		files = append(files, sf)
	}
	e, tab, err := experiments.MergeShards(files...)
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "E6" || len(tab.Rows) != 2 {
		t.Errorf("merged %s table with %d rows, want E6 with 2", e.ID, len(tab.Rows))
	}

	// And the merged table equals the single-process one byte for byte.
	want, err := e.Run(context.Background(),
		experiments.Config{Seed: 9, Sizes: []int{16, 24}, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	if want.Render() != tab.Render() {
		t.Errorf("shard+merge table differs from single process\nwant:\n%s\ngot:\n%s", want.Render(), tab.Render())
	}
}

// TestCheckpointFlag: a checkpointed run completes, prints, and removes
// its checkpoint file.
func TestCheckpointFlag(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "e6.ckpt")
	if err := run([]string{"-e", "E6", "-sizes", "16", "-trials", "4", "-checkpoint", ck}); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if _, err := os.Stat(ck); !os.IsNotExist(err) {
		t.Errorf("finished run left checkpoint behind (stat err=%v)", err)
	}
}

func TestRunJSON(t *testing.T) {
	if err := run([]string{"-e", "E1", "-sizes", "16", "-trials", "1", "-json"}); err != nil {
		t.Errorf("json: %v", err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run([]string{"-e", "E6", "-sizes", "16,32", "-trials", "4", "-workers", "3"}); err != nil {
		t.Errorf("workers: %v", err)
	}
}

func TestRunNoAtlas(t *testing.T) {
	if err := run([]string{"-e", "E6", "-sizes", "16,32", "-trials", "3", "-noatlas"}); err != nil {
		t.Errorf("noatlas: %v", err)
	}
}

func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	if err := run([]string{"-e", "E1", "-sizes", "32", "-trials", "1",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatalf("profiled run: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestRunProfileErrors(t *testing.T) {
	if err := run([]string{"-e", "E1", "-sizes", "16", "-cpuprofile", "/nonexistent-dir/x.prof"}); err == nil {
		t.Error("unwritable -cpuprofile accepted")
	}
	if err := run([]string{"-e", "E1", "-sizes", "16", "-trials", "1", "-memprofile", "/nonexistent-dir/x.prof"}); err == nil {
		t.Error("unwritable -memprofile accepted")
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	// A 1ns budget must abort the run with an error instead of hanging.
	if err := run([]string{"-e", "E2", "-sizes", "1024,2048", "-timeout", "1ns"}); err == nil {
		t.Error("expired timeout produced no error")
	}
}
