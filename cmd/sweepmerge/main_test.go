package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// runAvgbenchShard produces one shard file exactly the way
// `avgbench -e E6 -shard i/m -out path` does.
func runAvgbenchShard(t *testing.T, i, m int, path string) error {
	t.Helper()
	e, err := experiments.Get("E6")
	if err != nil {
		return err
	}
	cfg := experiments.Config{Seed: 4, Sizes: []int{16, 24}, Trials: 6}
	sf, err := experiments.RunShard(context.Background(), e, cfg, sweep.Shard{Index: i, Count: m}, "")
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteShardFile(f, sf)
}

// writeShards runs an experiment as m avgbench-style shard processes by
// calling the experiments layer the way cmd/avgbench does, returning the
// shard file paths. (The avgbench binary itself is exercised by its own
// tests; here the files are what matters.)
func writeShards(t *testing.T, dir string, m int) []string {
	t.Helper()
	paths := make([]string, m)
	for i := 0; i < m; i++ {
		paths[i] = filepath.Join(dir, "shard"+string(rune('0'+i))+".json")
		if err := runAvgbenchShard(t, i, m, paths[i]); err != nil {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
	}
	return paths
}

func TestMergeRejectsMissingAndBadInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no inputs accepted")
	}
	if err := run([]string{"-csv", "-json", "x.json"}); err == nil {
		t.Error("-csv with -json accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("corrupted file accepted")
	}
}

func TestMergeShardSet(t *testing.T) {
	paths := writeShards(t, t.TempDir(), 2)
	if err := run(paths); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := run([]string{"-csv", paths[0], paths[1]}); err != nil {
		t.Fatalf("csv merge: %v", err)
	}
	if err := run([]string{"-json", paths[0], paths[1]}); err != nil {
		t.Fatalf("json merge: %v", err)
	}
	if err := run([]string{paths[0]}); err == nil {
		t.Error("incomplete shard set accepted")
	}
	if err := run([]string{paths[0], paths[0]}); err == nil {
		t.Error("duplicate shard accepted")
	}
}
