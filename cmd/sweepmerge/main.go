// Command sweepmerge folds the partial aggregates written by
// `avgbench -e <ID> -shard i/m -out shard.json` into the experiment's
// final table. Given the complete shard set of one (experiment, config)
// run — every index 0..m-1 exactly once — the merged table is byte-
// identical to the one a single `avgbench -e <ID>` process prints: the
// engine's aggregate merge is deterministic and tie-broken by trial index
// exactly like the in-process fold.
//
// Usage:
//
//	avgbench -e E6 -shard 0/2 -out s0.json
//	avgbench -e E6 -shard 1/2 -out s1.json
//	sweepmerge s0.json s1.json          # == avgbench -e E6
//	sweepmerge -csv s0.json s1.json     # machine-readable, like avgbench -csv
//	sweepmerge -json s0.json s1.json    # metadata + table, like avgbench -json
//
// Mismatched inputs — different experiments, seeds, sizes or shard counts,
// duplicate or missing indices, corrupted or mis-versioned files — are
// rejected with a descriptive error before anything is merged.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepmerge:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweepmerge", flag.ContinueOnError)
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	asJSON := fs.Bool("json", false, "emit JSON (table plus metadata)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asCSV && *asJSON {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no shard files given")
	}

	files := make([]*experiments.ShardFile, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		sf, rerr := experiments.ReadShardFile(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("%s: %w", p, rerr)
		}
		files[i] = sf
	}
	e, tab, err := experiments.MergeShards(files...)
	if err != nil {
		return err
	}

	// Mirror avgbench's output formats exactly, so `diff` against a
	// single-process run is the equivalence check.
	switch {
	case *asJSON:
		out := []struct {
			ID    string             `json:"id"`
			Title string             `json:"title"`
			Claim string             `json:"claim"`
			Table *experiments.Table `json:"table"`
		}{{ID: e.ID, Title: e.Title, Claim: e.Claim, Table: tab}}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case *asCSV:
		return tab.WriteCSV(csv.NewWriter(os.Stdout))
	default:
		fmt.Printf("== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
		fmt.Println(tab.Render())
	}
	return nil
}
