// Command sweepmerge folds the partial aggregates written by
// `avgbench -e <ID> -shard i/m -out shard.json` into the experiment's
// final table. Given the complete shard set of one (experiment, config)
// run — every index 0..m-1 exactly once — the merged table is byte-
// identical to the one a single `avgbench -e <ID>` process prints: the
// engine's aggregate merge is deterministic and tie-broken by trial index
// exactly like the in-process fold.
//
// Usage:
//
//	avgbench -e E6 -shard 0/2 -out s0.json
//	avgbench -e E6 -shard 1/2 -out s1.json
//	sweepmerge s0.json s1.json          # == avgbench -e E6
//	sweepmerge -csv s0.json s1.json     # machine-readable, like avgbench -csv
//	sweepmerge -json s0.json s1.json    # metadata + table, like avgbench -json
//
// It also merges leased runs (avgbench -store DIR -lease / -shard): the
// store is self-describing — its manifest names the experiment and config
// — so the merge needs only the directory:
//
//	sweepmerge -store run/              # the store's one leased run
//	sweepmerge -store run/ -run E6      # disambiguate a multi-run store
//
// Mismatched inputs — different experiments, seeds, sizes or shard counts,
// duplicate or missing indices, overlapping trial-range claims, corrupted
// or mis-versioned files, incomplete leased runs — are rejected with a
// descriptive error before anything is merged.
package main

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		// Typed failures exit distinctly: 2 = incomplete run (recoverable,
		// finish the executors and retry), 3 = corrupt data (inspect the
		// named record), 1 = anything else.
		os.Exit(cli.Report(os.Stderr, "sweepmerge", err))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweepmerge", flag.ContinueOnError)
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned text")
	asJSON := fs.Bool("json", false, "emit JSON (table plus metadata)")
	storeFlag := fs.String("store", "", "merge a leased run from this store directory instead of shard files")
	runFlag := fs.String("run", "", "experiment ID of the leased run to merge, when the store holds several")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asCSV && *asJSON {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}
	paths := fs.Args()
	if *runFlag != "" && *storeFlag == "" {
		return fmt.Errorf("-run only makes sense with -store")
	}

	var (
		e   experiments.Experiment
		tab *experiments.Table
		err error
	)
	if *storeFlag != "" {
		if len(paths) != 0 {
			return fmt.Errorf("-store and shard files are mutually exclusive inputs")
		}
		e, tab, err = mergeStore(*storeFlag, *runFlag)
	} else {
		if len(paths) == 0 {
			return fmt.Errorf("no shard files given (or use -store for a leased run)")
		}
		files := make([]*experiments.ShardFile, len(paths))
		for i, p := range paths {
			f, oerr := os.Open(p)
			if oerr != nil {
				return oerr
			}
			sf, rerr := experiments.ReadShardFile(f)
			f.Close()
			if rerr != nil {
				// The codec only saw a reader; name the file for it.
				var dec *sweep.DecodeError
				if errors.As(rerr, &dec) && dec.Key == "" {
					dec.Key = p
				}
				return fmt.Errorf("%s: %w", p, rerr)
			}
			files[i] = sf
		}
		e, tab, err = experiments.MergeShards(files...)
	}
	if err != nil {
		return err
	}

	// Mirror avgbench's output formats exactly, so `diff` against a
	// single-process run is the equivalence check.
	switch {
	case *asJSON:
		out := []struct {
			ID    string             `json:"id"`
			Title string             `json:"title"`
			Claim string             `json:"claim"`
			Table *experiments.Table `json:"table"`
		}{{ID: e.ID, Title: e.Title, Claim: e.Claim, Table: tab}}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case *asCSV:
		return tab.WriteCSV(csv.NewWriter(os.Stdout))
	default:
		fmt.Printf("== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
		fmt.Println(tab.Render())
	}
	return nil
}

// mergeStore collects a leased run from a store directory. The store's
// manifests say what it holds; runID (an experiment ID) narrows the choice
// when executors for several experiments shared one directory.
func mergeStore(dir, runID string) (experiments.Experiment, *experiments.Table, error) {
	var none experiments.Experiment
	st, err := sweep.NewDirStore(dir)
	if err != nil {
		return none, nil, err
	}
	runs, err := experiments.FindLeasedRuns(st)
	if err != nil {
		return none, nil, err
	}
	if runID != "" {
		matched := runs[:0]
		for _, r := range runs {
			if strings.EqualFold(r.Experiment, runID) {
				matched = append(matched, r)
			}
		}
		runs = matched
	}
	switch len(runs) {
	case 0:
		if runID != "" {
			return none, nil, fmt.Errorf("%s holds no leased %s run", dir, runID)
		}
		return none, nil, fmt.Errorf("%s holds no leased runs", dir)
	case 1:
	default:
		var ids []string
		for _, r := range runs {
			ids = append(ids, r.Experiment)
		}
		return none, nil, fmt.Errorf("%s holds %d leased runs (%s); pick one with -run", dir, len(runs), strings.Join(ids, ", "))
	}
	e, err := experiments.Get(runs[0].Experiment)
	if err != nil {
		return none, nil, err
	}
	tab, err := experiments.MergeLeased(e, runs[0].Config, st)
	if err != nil {
		return none, nil, err
	}
	return e, tab, nil
}
