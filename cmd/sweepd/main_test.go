package main

// End-to-end over the real daemon loop: run() with a live listener, the
// HTTP API as a client sees it, and a SIGTERM-shaped shutdown (context
// cancellation — exactly what signal.NotifyContext delivers).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestRunRequiresStore(t *testing.T) {
	if err := run(context.Background(), nil); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("run without -store = %v, want the flag named", err)
	}
}

func TestDaemonServesJobAndDrains(t *testing.T) {
	store := filepath.Join(t.TempDir(), "run")
	addrCh := make(chan string, 1)
	onListen = func(a string) { addrCh <- a }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-store", store})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a
	case err := <-runErr:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never listened")
	}

	cfg := experiments.Config{Seed: 11, Sizes: []int{16, 24}, Trials: 12}
	body := fmt.Sprintf(`{"experiment":"E6","config":{"seed":%d,"sizes":[16,24],"trials":%d}}`,
		cfg.Seed, cfg.Trials)
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(base + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State == "done" {
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(base + "/jobs/" + st.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	got.ReadFrom(r.Body)
	r.Body.Close()
	e, err := experiments.Get("E6")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	fmt.Fprintf(&want, "== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
	want.WriteString(tab.Render())
	want.WriteByte('\n')
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("daemon table differs from CLI bytes\nwant:\n%s\ngot:\n%s", want.String(), got.String())
	}

	// SIGTERM-shaped shutdown: cancel the run context and the daemon
	// drains cleanly.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained daemon exited with %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained")
	}
}
