// Command sweepd is the resident sweep coordinator: a long-lived HTTP/JSON
// service that accepts experiment sweep submissions, deduplicates them by
// normalized-config identity, executes each job over supervised in-process
// lease workers (panic recovery, backed-off crash restarts, a circuit
// breaker for persistently failing jobs, a heartbeat watchdog for wedged
// ones), and serves finished tables — byte-identical to the avgbench CLI —
// from a content-addressed result cache over the store.
//
// Usage:
//
//	sweepd -store run/                        # serve on the default address
//	sweepd -store run/ -addr 127.0.0.1:9090
//	sweepd -store run/ -workers 4 -max-running 2
//	sweepd -store run/ -remote-only           # execution by a sweepworker fleet
//
// Submit, poll, fetch:
//
//	curl -d '{"experiment":"E6","config":{"seed":5}}' localhost:8350/jobs
//	curl localhost:8350/jobs/<id>
//	curl localhost:8350/jobs/<id>/table
//
// All durable state is in the store: kill the daemon however you like
// (SIGKILL included), restart it against the same -store, and it re-attaches
// to unfinished runs and resumes them from their completed grains. SIGTERM
// drains gracefully — submissions are refused, workers are cancelled, and
// already-published grains stay durable for the next life.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// onListen, when set by tests, receives the bound address before serving
// starts — how a test runs the daemon on "127.0.0.1:0" and still finds it.
var onListen func(addr string)

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8350", "HTTP listen address")
	storeFlag := fs.String("store", "", "store directory all durable state lives in (required); restarting against the same store resumes unfinished jobs")
	workers := fs.Int("workers", 2, "in-process lease workers per running job")
	maxRunning := fs.Int("max-running", 2, "jobs executing concurrently; admitted jobs beyond this wait queued")
	queueLimit := fs.Int("queue", 64, "admitted jobs (queued+running) before submissions get 429")
	maxAttempts := fs.Int("max-attempts", 5, "consecutive worker deaths without progress before a job is parked as failed")
	jobTimeout := fs.Duration("job-timeout", 0, "wall-clock cap per job (0 = no limit)")
	wedgeTimeout := fs.Duration("wedge-timeout", 30*time.Second, "watchdog interval for wedge detection; a wave frozen for two intervals is cancelled and replaced (negative disables)")
	grains := fs.Int("grains", 0, "grains each size's trial space is quantized into (0 = engine default)")
	remoteOnly := fs.Bool("remote-only", false, "run no in-process workers; execution is left to registered sweepworker processes pulling assignments over /workers")
	workerTTL := fs.Duration("worker-ttl", 10*time.Second, "remote worker liveness TTL: a worker that has not polled within it is reported dead, one dark past twice it is forgotten")
	pollInterval := fs.Duration("poll-interval", 500*time.Millisecond, "how often the supervisor checks store coverage for completion when no local workers run")
	noResume := fs.Bool("no-resume", false, "skip re-attaching to the store's unfinished runs on startup")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may take before the daemon gives up waiting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeFlag == "" {
		return fmt.Errorf("-store is required: the directory jobs run over (and resume from)")
	}
	st, err := sweep.NewDirStore(*storeFlag)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "sweepd: ", log.LstdFlags)
	c, err := serve.New(serve.Options{
		Store:        st,
		Workers:      *workers,
		MaxRunning:   *maxRunning,
		QueueLimit:   *queueLimit,
		MaxAttempts:  *maxAttempts,
		JobTimeout:   *jobTimeout,
		WedgeTimeout: *wedgeTimeout,
		Grains:       *grains,
		RemoteOnly:   *remoteOnly,
		WorkerTTL:    *workerTTL,
		PollInterval: *pollInterval,
		Logf:         logger.Printf,
	})
	if err != nil {
		return err
	}
	if !*noResume {
		n, err := c.Resume()
		if err != nil {
			// A store we cannot even list is a store we cannot serve from.
			return fmt.Errorf("resume from %s: %w", *storeFlag, err)
		}
		if n > 0 {
			logger.Printf("resumed %d unfinished job(s) from %s", n, *storeFlag)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Printf("listening on %s (store %s)", ln.Addr(), *storeFlag)
	if onListen != nil {
		onListen(ln.Addr().String())
	}
	srv := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logger.Printf("draining: refusing new jobs, stopping workers (grains already completed stay durable)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := c.Drain(dctx); err != nil {
		return err
	}
	counts := c.JobCounts()
	logger.Printf("drained: %d queued job(s) will resume on next start", counts[serve.StateQueued])
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
