package main

import (
	"strings"
	"testing"
)

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"pruning", "fullview", "cv", "uniform", "greedy", "mis", "changroberts", "cvmsg"} {
		if err := run([]string{"-n", "12", "-alg", alg, "-q"}); err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestRunAllIDSchemes(t *testing.T) {
	for _, scheme := range []string{"random", "identity", "reversed", "bitrev", "worst"} {
		if err := run([]string{"-n", "10", "-ids", scheme, "-q"}); err != nil {
			t.Errorf("ids %s: %v", scheme, err)
		}
	}
}

func TestRunExact(t *testing.T) {
	for _, alg := range []string{"pruning", "uniform", "mis"} {
		if err := run([]string{"-n", "6", "-alg", alg, "-exact", "-q"}); err != nil {
			t.Errorf("exact %s: %v", alg, err)
		}
	}
	// Message algorithms and oversized instances must fail cleanly.
	if err := run([]string{"-n", "6", "-alg", "changroberts", "-exact", "-q"}); err == nil {
		t.Error("-exact with a message algorithm accepted")
	}
	if err := run([]string{"-n", "16", "-alg", "pruning", "-exact", "-q"}); err == nil {
		t.Error("-exact beyond the enumeration cap accepted")
	}
}

func TestRunMessageEngine(t *testing.T) {
	if err := run([]string{"-n", "8", "-alg", "pruning", "-engine", "message", "-q"}); err != nil {
		t.Errorf("message engine: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"badAlg":    {"-alg", "nope"},
		"badIDs":    {"-ids", "nope"},
		"badEngine": {"-engine", "nope"},
		"badN":      {"-n", "2"},
	}
	for name, args := range cases {
		if err := run(append(args, "-q")); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunFlagParseError(t *testing.T) {
	err := run([]string{"-definitely-not-a-flag"})
	if err == nil || !strings.Contains(err.Error(), "flag") {
		t.Errorf("err = %v, want flag parse error", err)
	}
}
