// Command localsim runs one LOCAL-model algorithm on one instance and
// prints the per-vertex radii and outputs — the microscope view of what the
// experiment tables aggregate.
//
// Usage:
//
//	localsim -n 32 -alg pruning -ids random -seed 3
//	localsim -n 64 -alg cv -ids worst
//	localsim -n 24 -alg mis -engine message
//	localsim -n 9 -alg pruning -exact   # place the run in the exact n! distribution
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/analytic"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/problems"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("localsim", flag.ContinueOnError)
	n := fs.Int("n", 32, "cycle size")
	algName := fs.String("alg", "pruning", "algorithm: pruning|fullview|cv|uniform|greedy|mis|changroberts|cvmsg")
	idsName := fs.String("ids", "random", "identifiers: random|identity|reversed|bitrev|worst")
	seed := fs.Int64("seed", 1, "random seed")
	engine := fs.String("engine", "view", "engine: view|message (message uses the gather adapter)")
	quiet := fs.Bool("q", false, "suppress the per-vertex table")
	exactFlag := fs.Bool("exact", false, "also enumerate ALL n! permutations through the sharded engine and place this run in the exact distribution (view algorithms, n <= 12)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := graph.NewCycle(*n)
	if err != nil {
		return err
	}
	a, err := buildIDs(*idsName, *n, *seed)
	if err != nil {
		return err
	}

	var res *local.Result
	var problem problems.Problem
	if msgAlg, p, ok := buildMessageAlg(*algName, a); ok {
		// Native message algorithms always run on the message engine.
		problem = p
		res, err = local.RunMessage(c, a, msgAlg)
	} else {
		var alg local.ViewAlgorithm
		alg, problem, err = buildAlg(*algName, a)
		if err != nil {
			return err
		}
		switch *engine {
		case "view":
			res, err = local.RunView(c, a, alg)
		case "message":
			res, err = local.RunMessage(c, a, local.NewGather(alg))
		default:
			return fmt.Errorf("unknown engine %q", *engine)
		}
	}
	if err != nil {
		return err
	}

	if !*quiet {
		fmt.Println("vertex  id  radius  output")
		for v := 0; v < *n; v++ {
			fmt.Printf("%6d  %2d  %6d  %6d\n", v, a[v], res.Radii[v], res.Outputs[v])
		}
	}
	s := measure.Summarize(res.Radii)
	fmt.Printf("algorithm=%s n=%d max=%d avg=%.3f median=%.1f p90=%.1f\n",
		res.Algorithm, *n, s.Max, s.Avg, s.Median, s.P90)
	if problem != nil {
		if err := problem.Verify(c, a, res.Outputs); err != nil {
			return fmt.Errorf("output INVALID: %w", err)
		}
		fmt.Printf("output verified against %s\n", problem.Name())
	}
	if *exactFlag {
		if err := printExact(c, *algName, s); err != nil {
			return err
		}
	}
	return nil
}

// printExact enumerates every identifier permutation of c through the
// sharded engine and reports where the observed radius sum sits in the
// exact distribution — the microscope view of what E10 tabulates.
func printExact(c graph.Cycle, algName string, s measure.Summary) error {
	builder, ok := exactBuilder(algName)
	if !ok {
		return fmt.Errorf("-exact needs a view algorithm, not %q", algName)
	}
	st, err := exact.Distribution(context.Background(), c, builder, exact.Options{})
	if err != nil {
		return fmt.Errorf("-exact: %w", err)
	}
	fmt.Printf("exact over %d permutations: bestAvg=%.3f meanAvg=%.3f worstAvg=%.3f radiusMedian=%.1f radiusP90=%.1f\n",
		st.Perms, st.BestAvg(), st.MeanAvg(), st.WorstAvg(), st.Quantile(0.5), st.Quantile(0.9))
	fmt.Printf("this run's radius sum %d sits in [best %d, worst %d]\n", s.Sum, st.BestSum, st.WorstSum)
	return nil
}

// exactBuilder maps a view-algorithm name to the per-permutation
// constructor exact.Distribution enumerates with.
func exactBuilder(name string) (exact.Algorithm, bool) {
	switch name {
	case "pruning":
		return func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} }, true
	case "fullview":
		return func(int, ids.Assignment) local.ViewAlgorithm { return largestid.FullView{} }, true
	case "cv":
		return func(_ int, a ids.Assignment) local.ViewAlgorithm { return coloring.ForMaxID(a.MaxID()) }, true
	case "uniform":
		return func(int, ids.Assignment) local.ViewAlgorithm { return coloring.Uniform{} }, true
	case "greedy":
		return func(int, ids.Assignment) local.ViewAlgorithm { return coloring.FullViewGreedy{} }, true
	case "mis":
		return func(_ int, a ids.Assignment) local.ViewAlgorithm {
			return mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}
		}, true
	default:
		return nil, false
	}
}

func buildIDs(name string, n int, seed int64) (ids.Assignment, error) {
	switch name {
	case "random":
		return ids.Random(n, rand.New(rand.NewSource(seed))), nil
	case "identity":
		return ids.Identity(n), nil
	case "reversed":
		return ids.Reversed(n), nil
	case "bitrev":
		return ids.BitReversal(n), nil
	case "worst":
		perm, err := analytic.WorstCyclePerm(n)
		if err != nil {
			return nil, err
		}
		return ids.FromPerm(perm)
	default:
		return nil, fmt.Errorf("unknown ids scheme %q", name)
	}
}

// buildMessageAlg resolves algorithms that exist natively in the message
// model (small messages, no gather adapter).
func buildMessageAlg(name string, a ids.Assignment) (local.MessageAlgorithm, problems.Problem, bool) {
	switch name {
	case "changroberts":
		return largestid.ChangRoberts{}, problems.LargestID{}, true
	case "cvmsg":
		bits := coloring.ForMaxID(a.MaxID()).IDBits
		return coloring.ColeVishkinMessage{IDBits: bits}, problems.Coloring{K: 3}, true
	default:
		return nil, nil, false
	}
}

func buildAlg(name string, a ids.Assignment) (local.ViewAlgorithm, problems.Problem, error) {
	switch name {
	case "pruning":
		return largestid.Pruning{}, problems.LargestID{}, nil
	case "fullview":
		return largestid.FullView{}, problems.LargestID{}, nil
	case "cv":
		return coloring.ForMaxID(a.MaxID()), problems.Coloring{K: 3}, nil
	case "uniform":
		return coloring.Uniform{}, problems.Coloring{K: 3}, nil
	case "greedy":
		return coloring.FullViewGreedy{}, problems.Coloring{K: 3}, nil
	case "mis":
		return mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}, problems.MIS{}, nil
	default:
		return nil, nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
