// Command adversary builds the Theorem-1 permutation against a colouring
// algorithm and reports how the average radius responds: the executable
// form of the paper's lower-bound construction.
//
// Usage:
//
//	adversary -n 256
//	adversary -n 512 -alg uniform -target 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/adversary"
	"repro/internal/algorithms/coloring"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	n := fs.Int("n", 256, "cycle size")
	algName := fs.String("alg", "cv", "colouring algorithm to stress: cv|uniform")
	seed := fs.Int64("seed", 1, "random seed")
	target := fs.Int("target", 0, "per-slice radius target R (0 = paper default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var alg local.ViewAlgorithm
	switch *algName {
	case "cv":
		alg = coloring.ForMaxID(*n - 1)
	case "uniform":
		alg = coloring.Uniform{}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	rng := rand.New(rand.NewSource(*seed))
	builder := adversary.Builder{Alg: alg, TargetRadius: *target}
	pi, report, err := builder.Build(*n, rng)
	if err != nil {
		return err
	}
	fmt.Printf("built pi for n=%d: %d slices of radius %d, tail %d\n",
		*n, report.Slices, report.TargetRadius, report.Tail)

	c, err := graph.NewCycle(*n)
	if err != nil {
		return err
	}
	advRes, err := local.RunView(c, pi, alg)
	if err != nil {
		return err
	}
	if err := (problems.Coloring{K: 3}).Verify(c, pi, advRes.Outputs); err != nil {
		return fmt.Errorf("colouring under pi invalid: %w", err)
	}
	rndRes, err := local.RunView(c, ids.Random(*n, rng), alg)
	if err != nil {
		return err
	}

	fmt.Printf("average radius: adversarial=%.3f random=%.3f\n",
		advRes.AvgRadius(), rndRes.AvgRadius())
	held := 0
	for _, centre := range report.SliceCenters {
		if advRes.Radii[centre] >= report.TargetRadius {
			held++
		}
	}
	fmt.Printf("slice centres holding radius >= %d under pi: %d/%d\n",
		report.TargetRadius, held, report.Slices)
	if ratio, ok := adversary.Lemma3Ratio(c, advRes.Radii); ok {
		fmt.Printf("lemma 3 empirical constant (min over vertices): %.3f\n", ratio)
	}
	if v := adversary.Lemma2Violations(c, advRes.Radii, 8); v == 0 {
		fmt.Println("lemma 2 regularity: no violations within gap 8")
	} else {
		fmt.Printf("lemma 2 regularity: %d violations within gap 8\n", v)
	}
	return nil
}
