package main

import "testing"

func TestRunCV(t *testing.T) {
	if err := run([]string{"-n", "64", "-alg", "cv"}); err != nil {
		t.Errorf("cv: %v", err)
	}
}

func TestRunUniform(t *testing.T) {
	if err := run([]string{"-n", "64", "-alg", "uniform"}); err != nil {
		t.Errorf("uniform: %v", err)
	}
}

func TestRunExplicitTarget(t *testing.T) {
	if err := run([]string{"-n", "64", "-target", "1"}); err != nil {
		t.Errorf("target 1: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-alg", "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-n", "2"}); err == nil {
		t.Error("n=2 accepted")
	}
	if err := run([]string{"-target", "50", "-n", "32"}); err == nil {
		t.Error("unreachable target accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
