// Command netchaos runs a fault-injecting HTTP proxy between a sweep
// worker and its coordinator, for rehearsing network failure in shell
// scripts and CI the same way the Go chaos tests do in-process.
//
// Usage:
//
//	netchaos -listen 127.0.0.1:9001 -target http://127.0.0.1:8350 \
//	    -latency 20ms -error-every 7 -drop-every 11 -reset-every 13 -seed 42
//
// Faults are deterministic per (seed, request index): the same flags
// inject the same schedule every run. SIGUSR1 toggles a full partition —
// `kill -USR1 <pid>` cuts the network, a second one heals it — so a
// script can partition a worker for a window without restarting anything.
// On exit (SIGINT/SIGTERM) the proxy prints its injected-fault counters
// to stderr, so a smoke script can assert its chaos actually happened.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/netchaos"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "netchaos:", err)
		os.Exit(1)
	}
}

// onListen, when set by tests, receives the proxy's bound address.
var onListen func(addr string)

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("netchaos", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address the proxy listens on")
	target := fs.String("target", "", "base URL faults are injected in front of (required), e.g. http://127.0.0.1:8350")
	latency := fs.Duration("latency", 0, "max added latency per request, uniform in [0, latency)")
	errorEvery := fs.Int("error-every", 0, "answer every Nth request with a 502 without forwarding (0 = off)")
	dropEvery := fs.Int("drop-every", 0, "forward every Nth request, then drop the response after the backend applied it (0 = off)")
	resetEvery := fs.Int("reset-every", 0, "reset every Nth connection before forwarding (0 = off)")
	seed := fs.Uint64("seed", 1, "seed for the deterministic fault schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("-target is required: the URL to proxy (and sabotage)")
	}
	p, err := netchaos.NewAt(*listen, *target, netchaos.Faults{
		Seed:       *seed,
		MaxLatency: *latency,
		ErrorEvery: *errorEvery,
		DropEvery:  *dropEvery,
		ResetEvery: *resetEvery,
	})
	if err != nil {
		return err
	}
	defer p.Close()
	logger := log.New(os.Stderr, "netchaos: ", log.LstdFlags)
	logger.Printf("proxying %s -> %s (seed %d); SIGUSR1 toggles a partition", p.URL(), *target, *seed)
	if onListen != nil {
		onListen(p.URL())
	}

	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	defer signal.Stop(usr1)
	for {
		select {
		case <-usr1:
			now := !p.Partitioned()
			p.SetPartitioned(now)
			if now {
				logger.Printf("partition ON: all connections to %s are cut", *target)
			} else {
				logger.Printf("partition healed")
			}
		case <-ctx.Done():
			st := p.Stats()
			logger.Printf("stopping after %d request(s): forwarded=%d errors=%d resets=%d drops=%d partitioned=%d",
				st.Requests, st.Forwarded, st.Errors, st.Resets, st.Drops, st.Partitioned)
			// Give in-flight forwards a beat to finish before the listener dies.
			time.Sleep(10 * time.Millisecond)
			return nil
		}
	}
}
