package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// The CLI fronts a backend, injects its flagged faults, and SIGUSR1
// toggles a partition — the control surface the shell smoke test uses.
func TestCLIProxiesAndPartitionsOnSIGUSR1(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	addrCh := make(chan string, 1)
	onListen = func(addr string) { addrCh <- addr }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-target", srv.URL, "-error-every", "3", "-seed", "5"})
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("proxy never listened")
	}

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	get := func() (int, error) {
		resp, err := client.Get(base + "/x")
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	var okCount, errCount int
	for i := 0; i < 6; i++ {
		code, err := get()
		switch {
		case err == nil && code == http.StatusOK:
			okCount++
		case err != nil || code == http.StatusBadGateway:
			errCount++
		}
	}
	if okCount != 4 || errCount != 2 {
		t.Errorf("6 requests at -error-every 3: ok=%d faults=%d, want 4/2", okCount, errCount)
	}

	// SIGUSR1 partitions the whole process (the test binary IS the proxy
	// process here, so signal ourselves).
	syscall.Kill(syscall.Getpid(), syscall.SIGUSR1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := get(); err != nil {
			break // the partition is up
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGUSR1 never partitioned the proxy")
		}
		time.Sleep(5 * time.Millisecond)
	}
	before := hits.Load()
	if _, err := get(); err == nil {
		t.Fatal("request through a partition succeeded")
	}
	if hits.Load() != before {
		t.Error("backend saw traffic through a partition")
	}

	// A second SIGUSR1 heals it.
	syscall.Kill(syscall.Getpid(), syscall.SIGUSR1)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if code, err := get(); err == nil && code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second SIGUSR1 never healed the partition")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run never returned after cancel")
	}
}

func TestCLIRequiresTarget(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Fatal("run without -target succeeded")
	}
}
