// Command sweepworker is a resident remote lease executor: it registers
// with a sweepd coordinator, pulls job assignments over the worker API,
// and executes them over the coordinator's HTTP store — the network-side
// half of a remote fleet, with the same crash-anytime contract as every
// other executor: all durable state is per-grain completion records in
// the coordinator's store, so a worker may be SIGKILLed, partitioned
// away, or restarted at any moment and the fleet's merged table stays
// byte-identical.
//
// Usage:
//
//	sweepworker -coordinator http://127.0.0.1:8350
//	sweepworker -coordinator http://coord:8350 -name rack7 -poll 1s
//
// Network faults are expected, not exceptional: every store operation
// retries transient failures under a seeded backoff (idempotent Puts make
// lost-response retries harmless), polls ride out coordinator outages,
// and a registration expired by a long partition is simply re-acquired
// under a fresh identity — the lease protocol reconciles whatever the old
// identity half-did. The worker gives up only when the coordinator stays
// unreachable past -max-failures consecutive attempts, exiting 4 (the
// cli package's "network fault" diagnosis) so a supervisor can tell
// "coordinator gone" from "worker bug".
//
// SIGTERM drains: the current run is cancelled (its finished grains are
// already durable), the registration is deleted, and the worker exits 0.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		os.Exit(cli.Report(os.Stderr, "sweepworker", err))
	}
}

// errReregister reports a 404 from the worker API: the registration
// expired (a partition outlasted 2×TTL) or the coordinator restarted.
// Not a failure — the worker acquires a fresh identity and carries on.
var errReregister = errors.New("sweepworker: registration unknown; acquiring a new one")

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweepworker", flag.ContinueOnError)
	coord := fs.String("coordinator", "", "base URL of the sweepd coordinator (required), e.g. http://127.0.0.1:8350")
	name := fs.String("name", "", "worker name, embedded in its registration ids (default: the hostname)")
	poll := fs.Duration("poll", 500*time.Millisecond, "pacing for assignment polls and in-run heartbeats")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request HTTP deadline against the coordinator")
	retries := fs.Int("retries", 5, "transient-fault retries per store operation")
	maxFailures := fs.Int("max-failures", 10, "consecutive unreachable-coordinator episodes before the worker gives up (exit 4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("-coordinator is required: the sweepd URL to pull assignments from")
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		} else {
			*name = "worker"
		}
	}
	logger := log.New(os.Stderr, "sweepworker: ", log.LstdFlags)

	h := fnv.New64a()
	io.WriteString(h, *name)
	backoff := sweep.Backoff{Base: 200 * time.Millisecond, Max: 5 * time.Second, Seed: h.Sum64()}
	w := &worker{
		api:     newAPIClient(*coord, *timeout),
		store:   sweep.NewHTTPStore(*coord + "/store").WithTimeout(*timeout),
		name:    *name,
		poll:    *poll,
		retries: *retries,
		backoff: backoff,
		logf:    logger.Printf,
	}

	id, err := w.register(ctx, *maxFailures)
	if err != nil {
		return err
	}
	logger.Printf("registered as %s at %s", id, *coord)

	failures := 0 // consecutive unreachable episodes across polls and runs
	for {
		if ctx.Err() != nil {
			return w.drain(id)
		}
		a, err := w.api.pollOnce(id)
		switch {
		case errors.Is(err, errReregister):
			if id, err = w.register(ctx, *maxFailures); err != nil {
				return err
			}
			logger.Printf("re-registered as %s", id)
			continue
		case err != nil:
			if failures++; failures >= *maxFailures {
				return fmt.Errorf("sweepworker: coordinator unreachable after %d attempts: %w", failures, err)
			}
			if werr := backoff.Wait(ctx, failures-1); werr != nil {
				return w.drain(id)
			}
			continue
		}
		failures = 0
		if a == nil {
			if werr := sleepCtx(ctx, *poll); werr != nil {
				return w.drain(id)
			}
			continue
		}
		if err := w.execute(ctx, id, a); err != nil {
			if ctx.Err() != nil {
				return w.drain(id)
			}
			logger.Printf("assignment %s failed: %v", a.Job, err)
			// Crash-loop backoff: a job that keeps failing remotely (a poisoned
			// assignment, a flapping network) must not become a hot loop.
			if failures++; failures >= *maxFailures && !sweep.IsRetryable(err) {
				return err
			}
			if werr := backoff.Wait(ctx, failures-1); werr != nil {
				return w.drain(id)
			}
			continue
		}
		failures = 0
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker bundles one resident executor's wiring.
type worker struct {
	api     *apiClient
	store   *sweep.HTTPStore
	name    string
	poll    time.Duration
	retries int
	backoff sweep.Backoff
	logf    func(format string, args ...any)
}

// register acquires a registration, riding out transient coordinator
// faults under the backoff; budget consecutive failures and give up with
// the unreachable fault (→ exit 4).
func (w *worker) register(ctx context.Context, maxFailures int) (string, error) {
	for attempt := 0; ; attempt++ {
		id, err := w.api.register(w.name)
		if err == nil {
			return id, nil
		}
		if !sweep.IsRetryable(err) || attempt+1 >= maxFailures {
			return "", fmt.Errorf("sweepworker: register with coordinator: %w", err)
		}
		w.logf("register: %v (retrying)", err)
		if werr := w.backoff.Wait(ctx, attempt); werr != nil {
			return "", werr
		}
	}
}

// execute runs one assignment over the coordinator's HTTP store,
// heartbeating the registration throughout, and reports the outcome.
func (w *worker) execute(ctx context.Context, id string, a *serve.Assignment) error {
	e, err := experiments.Get(a.Experiment)
	if err != nil {
		return fmt.Errorf("sweepworker: assignment %s: %w", a.Job, err)
	}
	w.logf("assignment %s: running %s (grains %d)", a.Job, a.Experiment, a.Grains)

	// Heartbeat while the run executes: polling with a live assignment is
	// idempotent. A heartbeat lost to a partition is ignored — the grains
	// keep landing in the store either way, and an expired registration is
	// healed by the done report below.
	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	go func() {
		t := time.NewTicker(w.poll)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.api.pollOnce(id)
			case <-hbCtx.Done():
				return
			}
		}
	}()

	// Store-level retries pace faster than the registration backoff: a
	// flaky network inside a run should cost milliseconds, not seconds.
	storeRetry := sweep.Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Seed: w.backoff.Seed}
	rs := sweep.NewRetryStore(ctx, w.store, w.retries, storeRetry)
	stats, runErr := experiments.RunLeasedSweeps(ctx, e, a.Config, rs, sweep.LeaseOptions{
		Worker:        id,
		GrainsPerSize: a.Grains,
		Poll:          w.poll,
		Retry:         storeRetry,
		StoreRetries:  w.retries,
	})
	hbStop()

	errStr := ""
	if runErr != nil {
		errStr = runErr.Error()
	}
	if derr := w.api.done(id, a.Job, stats, errStr); derr != nil {
		if errors.Is(derr, errReregister) {
			// Expired mid-run (a long partition). The grains are durable and
			// the job's completion is decided by store coverage, not by this
			// report; log and move on to re-register on the next poll.
			w.logf("assignment %s: registration expired mid-run; grains are durable, result unaffected", a.Job)
		} else {
			w.logf("assignment %s: done report failed: %v", a.Job, derr)
		}
	}
	if runErr == nil {
		w.logf("assignment %s: covered (grains %d, claims %d, steals %d, adopted %d)",
			a.Job, stats.Grains, stats.Claims, stats.Steals, stats.Adopted)
	}
	return runErr
}

// drain is the SIGTERM path: best-effort deregistration, clean exit.
func (w *worker) drain(id string) error {
	w.logf("draining: deregistering %s (completed grains stay durable)", id)
	w.api.deregister(id)
	return nil
}

// apiClient speaks the coordinator's worker API. Transport faults come
// back as retryable *sweep.UnreachableError so one classifier drives
// both store and API retries.
type apiClient struct {
	base   string
	client *http.Client
}

func newAPIClient(base string, timeout time.Duration) *apiClient {
	return &apiClient{base: base, client: &http.Client{Timeout: timeout}}
}

func (c *apiClient) doJSON(method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	url := c.base + path
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return sweep.Transient(&sweep.UnreachableError{URL: url, Err: err})
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return sweep.Transient(&sweep.UnreachableError{URL: url, Err: err})
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return errReregister
	case resp.StatusCode == http.StatusNoContent:
		return nil
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		return sweep.Transient(&sweep.UnreachableError{URL: url,
			Err: fmt.Errorf("status %s: %s", resp.Status, bytes.TrimSpace(data))})
	case resp.StatusCode >= 400:
		return fmt.Errorf("sweepworker: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("sweepworker: decode %s response: %w", path, err)
		}
	}
	return nil
}

func (c *apiClient) register(name string) (string, error) {
	var info serve.WorkerInfo
	err := c.doJSON(http.MethodPost, "/workers", map[string]string{"name": name}, &info)
	if err != nil {
		return "", err
	}
	if info.ID == "" {
		return "", fmt.Errorf("sweepworker: coordinator returned an empty worker id")
	}
	return info.ID, nil
}

// pollOnce heartbeats and asks for work: (nil, nil) means "no work".
func (c *apiClient) pollOnce(id string) (*serve.Assignment, error) {
	var a serve.Assignment
	err := c.doJSON(http.MethodPost, "/workers/"+id+"/poll", nil, &a)
	if err != nil {
		return nil, err
	}
	if a.Job == "" {
		return nil, nil // 204: registered, alive, nothing to do
	}
	return &a, nil
}

func (c *apiClient) done(id, job string, stats sweep.LeaseStats, errStr string) error {
	return c.doJSON(http.MethodPost, "/workers/"+id+"/done", map[string]any{
		"job": job, "stats": stats, "error": errStr,
	}, nil)
}

func (c *apiClient) deregister(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/workers/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}
