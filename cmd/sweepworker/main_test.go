package main

// The remote-fleet acceptance suite. The core bar: a coordinator plus
// three sweepworker processes, each behind its own fault-injecting
// network proxy, one SIGKILLed mid-run and another partitioned away —
// and the table the coordinator finally serves is byte-for-byte the
// single-process result.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/netchaos"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// TestMain lets this test binary impersonate the real sweepworker: with
// SWEEPWORKER_BE_MAIN=1 it runs main() on its arguments and exits. The
// chaos test below uses that to spawn genuine worker processes it can
// SIGKILL and partition without mercy.
func TestMain(m *testing.M) {
	if os.Getenv("SWEEPWORKER_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestFlagValidation(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("run without -coordinator accepted")
	}
	if err := run(context.Background(), []string{"-coordinator", "http://x", "-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// A worker whose coordinator never answers gives up after its failure
// budget with the unreachable diagnosis — exit 4 through cli.Report,
// with the offending URL in the cause chain.
func TestUnreachableCoordinatorExitsFour(t *testing.T) {
	err := run(context.Background(), []string{
		"-coordinator", "http://127.0.0.1:1", // reserved port: nothing listens
		"-max-failures", "2",
	})
	if err == nil {
		t.Fatal("run against a dead coordinator succeeded")
	}
	var un *sweep.UnreachableError
	if !errors.As(err, &un) || !strings.Contains(un.URL, "127.0.0.1:1") {
		t.Fatalf("err = %v, want an *UnreachableError naming the coordinator", err)
	}
	var out strings.Builder
	if code := cli.Report(&out, "sweepworker", err); code != cli.ExitUnreachable {
		t.Errorf("exit code = %d, want %d\n%s", code, cli.ExitUnreachable, out.String())
	}
}

// chaosConfig sustains roughly a second of compute single-process, so the
// distributed run is long enough to SIGKILL and partition mid-flight.
var chaosConfig = experiments.Config{Seed: 23, Sizes: []int{1024, 2048}, Trials: 400}

// expectedBytes renders what the coordinator must serve — the avgbench
// CLI bytes for the config.
func expectedBytes(t *testing.T, id string, cfg experiments.Config) []byte {
	t.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s\n   claim: %s\n", e.ID, e.Title, e.Claim)
	buf.WriteString(tab.Render())
	buf.WriteByte('\n')
	return buf.Bytes()
}

// countDoneObjects counts durable per-grain completion records under a
// DirStore root — the "work has landed" signal the kill waits for.
func countDoneObjects(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.Contains(filepath.ToSlash(path), "/done/") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// safeBuf is a self-locking buffer for subprocess stderr: exec spawns a
// copier goroutine for non-file writers, so both Write and String must
// synchronize.
type safeBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startWorker spawns a real sweepworker subprocess pointed at base.
func startWorker(t *testing.T, name, base string, logs *safeBuf) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0],
		"-coordinator", base, "-name", name,
		"-poll", "50ms", "-timeout", "5s", "-retries", "8", "-max-failures", "100")
	cmd.Env = append(os.Environ(), "SWEEPWORKER_BE_MAIN=1")
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// The acceptance bar: a remote-only coordinator and three sweepworker
// processes, each behind its own chaos proxy. One worker is SIGKILLed
// after the first durable grain, a second is partitioned away mid-run
// (long enough to expire its registration), the third rides injected
// errors, drops and latency the whole way — and the served E6 table is
// byte-identical to the single-process run.
func TestFleetSurvivesSIGKILLAndPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	dir := t.TempDir()
	st, err := sweep.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := serve.New(serve.Options{
		Store:        st,
		RemoteOnly:   true,
		Grains:       8,
		WorkerTTL:    750 * time.Millisecond,
		PollInterval: 50 * time.Millisecond,
		WedgeTimeout: -1, // the partition window must not park the job
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// One proxy per worker, so faults hit each worker's network alone.
	// Worker 0 (the SIGKILL victim) gets a clean path; worker 1's path
	// will be partitioned; worker 2 lives with seeded errors, dropped
	// responses and latency throughout.
	mkProxy := func(f netchaos.Faults) *netchaos.Proxy {
		p, perr := netchaos.New(srv.URL, f)
		if perr != nil {
			t.Fatal(perr)
		}
		t.Cleanup(p.Close)
		return p
	}
	p0 := mkProxy(netchaos.Faults{Seed: 101})
	p1 := mkProxy(netchaos.Faults{Seed: 102, MaxLatency: 2 * time.Millisecond})
	p2 := mkProxy(netchaos.Faults{Seed: 103, ErrorEvery: 29, DropEvery: 37, MaxLatency: 2 * time.Millisecond})

	js, err := c.Submit("E6", chaosConfig)
	if err != nil {
		t.Fatal(err)
	}

	var logs [3]safeBuf
	workers := []*exec.Cmd{
		startWorker(t, "w0", p0.URL(), &logs[0]),
		startWorker(t, "w1", p1.URL(), &logs[1]),
		startWorker(t, "w2", p2.URL(), &logs[2]),
	}
	defer func() {
		for _, w := range workers {
			if w != nil && w.Process != nil {
				w.Process.Kill()
				w.Wait()
			}
		}
	}()

	// Wait for the first durable completion, then kill worker 0 without
	// warning and cut worker 1's network for beyond 2×TTL.
	deadline := time.Now().Add(60 * time.Second)
	for countDoneObjects(t, dir) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no completion records within 60s\nw0: %s\nw1: %s\nw2: %s",
				logs[0].String(), logs[1].String(), logs[2].String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := workers[0].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	workers[0].Wait()
	workers[0] = nil
	p1.PartitionFor(1600 * time.Millisecond) // > 2×TTL: w1's registration expires

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	fin, err := c.Wait(ctx, js.ID)
	if err != nil {
		t.Fatalf("job never finished: %v\nw1: %s\nw2: %s", err, logs[1].String(), logs[2].String())
	}
	if fin.State != serve.StateDone {
		t.Fatalf("state = %s (%s), want done", fin.State, fin.Error)
	}
	table, err := c.Table(js.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedBytes(t, "E6", chaosConfig); !bytes.Equal(table, want) {
		t.Errorf("fleet table differs from single-process bytes\nwant %d bytes, got %d", len(want), len(table))
	}

	// The chaos actually happened: worker 2's proxy injected faults, and
	// worker 1's partition refused connections.
	if s := p2.Stats(); s.Errors == 0 && s.Drops == 0 {
		t.Errorf("worker 2's proxy injected nothing: %+v", s)
	}
	if s := p1.Stats(); s.Partitioned == 0 {
		t.Logf("note: worker 1 sent nothing during its partition window (%+v)", s)
	}

	// Survivors drain on SIGTERM: exit 0, registrations deleted.
	for _, w := range workers[1:] {
		w.Process.Signal(syscall.SIGTERM)
	}
	for i, w := range workers[1:] {
		if err := w.Wait(); err != nil {
			t.Errorf("worker %d did not drain cleanly: %v\nlog: %s", i+1, err, logs[i+1].String())
		}
	}
	workers = nil
	if ws := c.Workers(); len(ws) != 0 {
		t.Errorf("registry after drain = %+v, want empty", ws)
	}
}

// A worker with nothing to do still registers, heartbeats, and drains
// out cleanly on SIGTERM, deleting its registration.
func TestIdleWorkerDrainsOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	st := sweep.NewMemStore()
	c, err := serve.New(serve.Options{Store: st, RemoteOnly: true, WorkerTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var logs safeBuf
	w := startWorker(t, "idler", srv.URL, &logs)
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Workers()) == 0 {
		if time.Now().After(deadline) {
			w.Process.Kill()
			w.Wait()
			t.Fatalf("worker never registered\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatalf("idle worker exit: %v\n%s", err, logs.String())
	}
	if ws := c.Workers(); len(ws) != 0 {
		t.Errorf("registry after drain = %+v, want empty", ws)
	}
}
