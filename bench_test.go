// Package repro's root benchmark suite regenerates every experiment of the
// paper (E1..E9, one benchmark per claim — the paper's "tables and
// figures"), benchmarks the simulator's hot paths, and pits the sharded
// sweep engine against a single worker on a full-size experiment. Run:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks use reduced sweeps so a full -bench=. pass stays in
// seconds; cmd/avgbench runs the full-size tables.
package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/largestid"
	"repro/internal/algorithms/mis"
	"repro/internal/analytic"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linial"
	"repro/internal/local"
	"repro/internal/sweep"
)

// benchExperiment runs one registered experiment with a bench-sized sweep.
func benchExperiment(b *testing.B, id string, cfg experiments.Config) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE1LargestIDWorstCase regenerates E1: the classic measure of the
// largest-ID problem is linear (max radius = n/2 at the max-ID vertex).
func BenchmarkE1LargestIDWorstCase(b *testing.B) {
	benchExperiment(b, "E1", experiments.Config{Seed: 1, Sizes: []int{64, 256, 1024}, Trials: 2})
}

// BenchmarkE2LargestIDAverage regenerates E2: the average measure of the
// same algorithm is Θ(log n) — the paper's exponential separation — with
// the worst-case permutation reconstructed exactly from the recurrence.
func BenchmarkE2LargestIDAverage(b *testing.B) {
	benchExperiment(b, "E2", experiments.Config{Seed: 1, Sizes: []int{64, 256, 1024, 4096}, Trials: 2})
}

// BenchmarkE3Recurrence regenerates E3: a(p) == A000788(p) == Θ(n ln n).
func BenchmarkE3Recurrence(b *testing.B) {
	benchExperiment(b, "E3", experiments.Config{Seed: 1, Sizes: []int{64, 1024, 16384}})
}

// BenchmarkE4ColeVishkin regenerates E4: 3-colouring in O(log* n) for every
// vertex, with and without knowledge of the identifier space.
func BenchmarkE4ColeVishkin(b *testing.B) {
	benchExperiment(b, "E4", experiments.Config{Seed: 1, Sizes: []int{64, 1024, 16384}})
}

// BenchmarkE5AdversarialColouring regenerates E5: the Theorem-1 permutation
// keeps the 3-colouring average radius at its Ω(log* n) floor.
func BenchmarkE5AdversarialColouring(b *testing.B) {
	benchExperiment(b, "E5", experiments.Config{Seed: 1, Sizes: []int{64, 128}})
}

// BenchmarkE6RandomExpectation regenerates E6: the expectation over random
// permutations (§4 further work) is Θ(log n) as well.
func BenchmarkE6RandomExpectation(b *testing.B) {
	benchExperiment(b, "E6", experiments.Config{Seed: 1, Sizes: []int{64, 256, 1024}, Trials: 5})
}

// BenchmarkE7Characterisation regenerates E7: largest ID separates the two
// measures, colouring and MIS do not (§4 characterisation question).
func BenchmarkE7Characterisation(b *testing.B) {
	benchExperiment(b, "E7", experiments.Config{Seed: 1, Sizes: []int{64, 256, 1024}})
}

// BenchmarkE8LinialThreshold regenerates E8: exact 3-colourability of the
// smallest neighbourhood graphs (feasible cases only; the s=7
// impossibility proof runs in the full table via cmd/avgbench).
func BenchmarkE8LinialThreshold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := linial.ThreeColorable(6, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !v.Usable {
			b.Fatal("s=6 must be feasible")
		}
	}
}

// BenchmarkE9GeneralGraphs regenerates E9: the measure separation across
// graph families (§4's "more general graphs" question).
func BenchmarkE9GeneralGraphs(b *testing.B) {
	benchExperiment(b, "E9", experiments.Config{Seed: 1, Sizes: []int{256, 1024}, Trials: 2})
}

// --- sharded sweep engine vs a single worker ---

// benchSweepWorkers regenerates E6 at its full default scale (sizes up to
// n=4096, 20 random permutations each) with a fixed worker-pool size. The
// Sequential/Sharded pair is the engine's headline: identical tables,
// wall-clock divided by the core count. noAtlas pins the run to the
// ball-builder path, the pre-atlas baseline the Atlas pair is measured
// against; noKernels keeps the atlas but takes the per-vertex view path
// instead of the flat decision kernels. The tables are byte-identical in
// every configuration.
func benchSweepWorkers(b *testing.B, workers int, noAtlas, noKernels bool) {
	b.Helper()
	e, err := experiments.Get("E6")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Seed: 1, Workers: workers, NoAtlas: noAtlas, NoKernels: noKernels}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSweepE6Sequential is the full-size E6 sweep on one worker with
// the atlas disabled — the old hand-rolled loop's execution model, kept as
// the perf baseline.
func BenchmarkSweepE6Sequential(b *testing.B) { benchSweepWorkers(b, 1, true, false) }

// BenchmarkSweepE6Sharded is the builder-path sweep sharded across all
// cores; same seed, byte-identical table.
func BenchmarkSweepE6Sharded(b *testing.B) { benchSweepWorkers(b, 0, true, false) }

// BenchmarkSweepE6AtlasSequential serves the same sweep from the shared
// ball atlas on one worker: BFS layers are materialised once per size and
// every trial shrinks to relabel + decide.
func BenchmarkSweepE6AtlasSequential(b *testing.B) { benchSweepWorkers(b, 1, false, false) }

// BenchmarkSweepE6AtlasSharded combines every engine layer: flat decision
// kernels over the shared atlas under the full worker pool — the headline
// configuration the CI regression guard tracks.
func BenchmarkSweepE6AtlasSharded(b *testing.B) { benchSweepWorkers(b, 0, false, false) }

// BenchmarkSweepE6AtlasNoKernels is the atlas WITHOUT the flat kernels —
// the PR 2 execution model, kept as the A/B baseline the kernel speedup is
// measured against (cmd/avgbench -nokernels is the CLI form).
func BenchmarkSweepE6AtlasNoKernels(b *testing.B) { benchSweepWorkers(b, 0, false, true) }

// benchSweepRaw measures the sweep engine directly (no table rendering):
// the pruning algorithm over random permutations of a 4096-cycle, 32
// trials, with the atlas either forced off (builder baseline) or on.
func benchSweepRaw(b *testing.B, workers int, noAtlas bool) {
	b.Helper()
	spec := sweep.Spec{
		Seed:    9,
		Sizes:   []int{4096},
		Trials:  32,
		Workers: workers,
		NoAtlas: noAtlas,
		Graph:   func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:     func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sizes[0].Trials != 32 {
			b.Fatal("incomplete sweep")
		}
	}
}

func BenchmarkSweepRawSequential(b *testing.B)      { benchSweepRaw(b, 1, true) }
func BenchmarkSweepRawSharded(b *testing.B)         { benchSweepRaw(b, 0, true) }
func BenchmarkSweepRawAtlasSequential(b *testing.B) { benchSweepRaw(b, 1, false) }
func BenchmarkSweepRawAtlasSharded(b *testing.B)    { benchSweepRaw(b, 0, false) }

// benchSweepImplicit measures the implicit backend directly: closed-form
// ball synthesis (no adjacency, no atlas, no CSR) serving the flat pruning
// kernel over random permutations of a 65536-cycle — E2's average-radius
// sweep at a size where the materialised atlas stops being the obvious
// default. Tables are byte-identical to the atlas and builder backends;
// this pair tracks the synthesis path's time and its O(workers) allocation
// profile.
func benchSweepImplicit(b *testing.B, workers int) {
	b.Helper()
	spec := sweep.Spec{
		Seed:    9,
		Sizes:   []int{65536},
		Trials:  8,
		Workers: workers,
		Backend: sweep.BackendImplicit,
		Graph:   func(n int, _ *rand.Rand) (graph.Graph, error) { return graph.NewCycle(n) },
		Alg:     func(int, ids.Assignment) local.ViewAlgorithm { return largestid.Pruning{} },
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sweep.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.Sizes[0].Trials != 8 {
			b.Fatal("incomplete sweep")
		}
	}
}

func BenchmarkSweepE2ImplicitSequential(b *testing.B) { benchSweepImplicit(b, 1) }
func BenchmarkSweepE2ImplicitSharded(b *testing.B)    { benchSweepImplicit(b, 0) }

// --- exact exhaustive enumeration: Heap baseline vs the sharded engine ---

// exactBenchN is the enumeration benchmark size: 10! = 3 628 800
// permutations, the old MaxEnumerationN ceiling.
const exactBenchN = 10

// BenchmarkExactCycleSequential is the pre-engine exact loop: Heap's
// algorithm over all n! permutations on one core, folding the closed-form
// pruning radii — the baseline the sharded engine is measured against.
func BenchmarkExactCycleSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := exact.CycleStatsSequential(exactBenchN)
		if err != nil {
			b.Fatal(err)
		}
		if st.Perms != 3628800 {
			b.Fatalf("visited %d permutations", st.Perms)
		}
	}
}

// BenchmarkExactCycleSharded runs the same enumeration through the sweep
// engine — rank-block sharding over all cores, shared atlas, flat pruning
// kernel — including the closed-form cross-check. NoQuotient pins the full
// n! fold: this row is the baseline the quotient pair below is measured
// against. Single-core the engine costs ~1.5× the closed-form fold per
// permutation, so the speedup is ~cores/1.5 (≳3× from 5 cores up; run on a
// multicore machine to see it).
func BenchmarkExactCycleSharded(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := exact.CycleStats(context.Background(), exactBenchN, exact.Options{NoQuotient: true})
		if err != nil {
			b.Fatal(err)
		}
		if st.Perms != 3628800 {
			b.Fatalf("visited %d permutations", st.Perms)
		}
	}
}

// benchExactQuotient enumerates the same instance over canonical orbit
// representatives only: n!/2n executions folded with weight 2n, returning
// Stats bit-identical to the full fold. At n=10 that is 181 440
// representatives instead of 3 628 800 permutations — a structural 2n=20×
// work reduction the BENCH_sweep.json guard tracks against the
// ExactCycleSharded baseline (the acceptance floor is n×).
func benchExactQuotient(b *testing.B, workers int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := exact.CycleStats(context.Background(), exactBenchN, exact.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		// Perms is orbit-weighted: the quotient run still accounts for every
		// one of the n! permutations.
		if st.Perms != 3628800 {
			b.Fatalf("accounted %d permutations", st.Perms)
		}
	}
}

func BenchmarkExactCycleQuotientSequential(b *testing.B) { benchExactQuotient(b, 1) }
func BenchmarkExactCycleQuotientSharded(b *testing.B)    { benchExactQuotient(b, 0) }

// --- simulator hot paths ---

// BenchmarkViewEnginePruning measures the view engine running the pruning
// algorithm over a full random cycle (the core of E1/E2/E6).
func BenchmarkViewEnginePruning(b *testing.B) {
	const n = 4096
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunView(c, a, largestid.Pruning{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewEngineColeVishkin measures a full CV colouring run.
func BenchmarkViewEngineColeVishkin(b *testing.B) {
	const n = 4096
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(2)))
	alg := coloring.ForMaxID(a.MaxID())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunView(c, a, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewEngineUniform measures the no-knowledge colouring.
func BenchmarkViewEngineUniform(b *testing.B) {
	const n = 1024
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(3)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunView(c, a, coloring.Uniform{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewEngineMIS measures the composed MIS algorithm.
func BenchmarkViewEngineMIS(b *testing.B) {
	const n = 512
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(4)))
	alg := mis.FromColoring{Base: coloring.ForMaxID(a.MaxID())}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunView(c, a, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageEngineGather measures the goroutine-per-node message
// engine running the gather adapter (the round-based formulation).
func BenchmarkMessageEngineGather(b *testing.B) {
	const n = 256
	c := graph.MustCycle(n)
	a := ids.Random(n, rand.New(rand.NewSource(5)))
	alg := local.NewGather(largestid.Pruning{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := local.RunMessage(c, a, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecurrenceDP measures the exact a(p) dynamic program.
func BenchmarkRecurrenceDP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analytic.Recurrence(1 << 14); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaryBuild measures the Theorem-1 permutation construction.
func BenchmarkAdversaryBuild(b *testing.B) {
	const n = 128
	builder := adversary.Builder{Alg: coloring.ForMaxID(n - 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, _, err := builder.Build(n, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBallGrowth measures the incremental ball builder the view engine
// depends on.
func BenchmarkBallGrowth(b *testing.B) {
	const n = 1 << 14
	c := graph.MustCycle(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := graph.NewBallBuilder(c, 0)
		for r := 0; r < n/2; r++ {
			bb.Grow()
		}
	}
}

// BenchmarkBallAtlasServe measures the atlas steady state the sweep relies
// on: after one center's layers are materialised, every further trial's
// ball is served as prefix windows in O(radius) row pointers.
func BenchmarkBallAtlasServe(b *testing.B) {
	const n = 1 << 14
	c := graph.MustCycle(n)
	atlas := graph.NewBallAtlas(c, -1)
	if atlas.Ensure(0, n/2) == nil {
		b.Fatal("atlas capped")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := atlas.Ensure(0, n/2); st == nil || st.SizeAt(n/2) != n {
			b.Fatal("under-served")
		}
	}
}
