// Dynamic: the paper's first motivation (§1) — in a dynamic network, "the
// average time to update the labels of the graph after a change at a random
// node can be estimated using the average measure".
//
// We run largest-ID on a ring, then repeatedly swap the identifiers of two
// random vertices and measure the re-decision cost: which vertices' views
// changed within their decision radius (they must recompute), and how much
// radius the recomputation costs. The expected update cost tracks the
// AVERAGE radius, not the worst case.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n      = 512
		trials = 50
	)
	ring, err := graph.NewCycle(n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	assignment := ids.Random(n, rng)

	before, err := local.RunView(ring, assignment, largestid.Pruning{})
	if err != nil {
		return err
	}
	fmt.Printf("largest-ID on C_%d: max radius %d, avg radius %.2f\n",
		n, before.MaxRadius(), before.AvgRadius())
	fmt.Println()

	var totalAffected, totalCost int
	for trial := 0; trial < trials; trial++ {
		u, w := rng.Intn(n), rng.Intn(n)
		mutated := assignment.Clone()
		mutated[u], mutated[w] = mutated[w], mutated[u]

		after, err := local.RunView(ring, mutated, largestid.Pruning{})
		if err != nil {
			return err
		}
		// A vertex must re-decide iff a changed identifier lies within its
		// OLD decision radius; its update cost is its NEW radius.
		affected, cost := 0, 0
		for v := 0; v < n; v++ {
			du, dw := ring.Dist(v, u), ring.Dist(v, w)
			if du > before.Radii[v] && dw > before.Radii[v] {
				continue // the change is invisible to v's final view
			}
			affected++
			cost += after.Radii[v]
		}
		totalAffected += affected
		totalCost += cost
	}

	avgAffected := float64(totalAffected) / trials
	perNode := float64(totalCost) / trials / n
	fmt.Printf("after a random identifier swap (averaged over %d trials):\n", trials)
	fmt.Printf("  vertices needing re-decision:      %.1f of %d (%.1f%%)\n",
		avgAffected, n, 100*avgAffected/float64(n))
	fmt.Printf("  per-node expected update time:     %.2f radius units\n", perNode)
	fmt.Printf("  paper's average measure (a priori): %.2f  <- the right estimator\n", before.AvgRadius())
	fmt.Printf("  classic worst-case measure:        %d     <- overestimates by %.0fx\n",
		before.MaxRadius(), float64(before.MaxRadius())/perNode)
	fmt.Println()
	fmt.Println("\"The average time to update the labels of the graph after a change at a")
	fmt.Println("random node can be estimated using the average measure\" (§1): the classic")
	fmt.Println("measure would have predicted two orders of magnitude more work.")
	return nil
}
