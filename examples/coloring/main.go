// Coloring: 3-colour rings of growing size with Cole-Vishkin and with the
// uniform (no-knowledge) variant, showing the O(log* n) plateau and that
// the average radius tracks the maximum — 3-colouring is a problem where
// the paper's new measure does NOT help (Theorem 1).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms/coloring"
	"repro/internal/analytic"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/problems"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(42))
	fmt.Println("3-colouring the ring: radius vs n (avg == max: no averaging gain)")
	fmt.Println("      n  log*(n)  ColeVishkin(max/avg)  Uniform(max/avg)")
	for _, n := range []int{16, 128, 1024, 8192, 65536} {
		ring, err := graph.NewCycle(n)
		if err != nil {
			return err
		}
		assignment := ids.Random(n, rng)

		cv, err := local.RunView(ring, assignment, coloring.ForMaxID(assignment.MaxID()))
		if err != nil {
			return err
		}
		if err := (problems.Coloring{K: 3}).Verify(ring, assignment, cv.Outputs); err != nil {
			return fmt.Errorf("n=%d cv: %w", n, err)
		}
		uni, err := local.RunView(ring, assignment, coloring.Uniform{})
		if err != nil {
			return err
		}
		if err := (problems.Coloring{K: 3}).Verify(ring, assignment, uni.Outputs); err != nil {
			return fmt.Errorf("n=%d uniform: %w", n, err)
		}
		fmt.Printf("%7d  %7d  %10d / %-7.2f  %7d / %-7.2f\n",
			n, analytic.LogStar(float64(n)),
			cv.MaxRadius(), cv.AvgRadius(),
			uni.MaxRadius(), uni.AvgRadius())
	}
	fmt.Println()
	fmt.Println("Linial's bound survives averaging: no 3-colouring algorithm can make")
	fmt.Println("the AVERAGE radius o(log* n), so the flat lines above are optimal.")
	return nil
}
