// Synthesis: below Theorem 1's black box. The paper's lower bound (§3)
// quantifies over all algorithms via the notion of MINIMAL algorithms; this
// example makes one. We 3-colour Linial's neighbourhood graph N_1(s)
// exactly and turn the witness into a lookup-table algorithm that colours
// every in-space ring at radius exactly 1 — then watch it hit the exact
// impossibility wall at s = 7.
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/linial"
	"repro/internal/local"
	"repro/internal/problems"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("exact feasibility of radius-1 3-colouring, by identifier space:")
	for s := 4; s <= 7; s++ {
		verdict, err := linial.ThreeColorable(s, 1)
		if err != nil {
			return err
		}
		status := "IMPOSSIBLE (proved exhaustively)"
		if verdict.Usable {
			status = "possible"
		}
		fmt.Printf("  s=%d: N_1(%d) has %3d views, %4d edges -> %s\n",
			s, s, verdict.Views, verdict.Edges, status)
	}
	fmt.Println()

	// Synthesize the table for the largest feasible space and run it.
	table, err := linial.Synthesize(6, 1)
	if err != nil {
		return err
	}
	ring := graph.MustCycle(6)
	assignment, err := ids.FromPerm([]int{4, 1, 5, 0, 3, 2})
	if err != nil {
		return err
	}
	res, err := local.RunView(ring, assignment, table)
	if err != nil {
		return err
	}
	if err := (problems.Coloring{K: 3}).Verify(ring, assignment, res.Outputs); err != nil {
		return fmt.Errorf("synthesized colouring invalid: %w", err)
	}
	fmt.Printf("synthesized %s on C_6 (ids %v):\n", table.Name(), assignment)
	fmt.Printf("  colours: %v\n", res.Outputs)
	fmt.Printf("  radius:  max=%d avg=%.1f — every vertex decides at radius 1,\n",
		res.MaxRadius(), res.AvgRadius())
	fmt.Println("  the minimum any 3-colouring algorithm can achieve (radius 0 fails at s=4).")
	fmt.Println()
	fmt.Println("Theorem 1 in action: even such minimal algorithms cannot push the")
	fmt.Println("AVERAGE below Ω(log* n) once the identifier space grows — at s=7 the")
	fmt.Println("table construction provably ceases to exist.")
	return nil
}
