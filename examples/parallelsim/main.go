// Parallelsim: the paper's second motivation (§1) — "in the context of
// parallel computations that simulate distributed computations, we can take
// advantage of the fact that a job is finished earlier to process another
// job, and then the average running time is the relevant measure".
//
// P workers simulate the n per-vertex executions of the largest-ID
// algorithm; a vertex whose algorithm stops at radius r costs r work units.
// The measured makespan is ≈ max(Σr/P, longest job) — governed by the
// paper's AVERAGE measure — far below the n·max/P capacity a
// worst-case-only analysis would have to provision for.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n       = 4096
		workers = 16
	)
	ring, err := graph.NewCycle(n)
	if err != nil {
		return err
	}
	assignment := ids.Random(n, rand.New(rand.NewSource(99)))
	res, err := local.RunView(ring, assignment, largestid.Pruning{})
	if err != nil {
		return err
	}

	// Longest-processing-time list scheduling: sort jobs by decreasing
	// cost, always hand the next job to the worker that frees up first.
	// (Virtual time, deterministic: a worker that finishes early takes the
	// next job — exactly the reuse the paper describes.)
	jobs := append([]int(nil), res.Radii...)
	sort.Sort(sort.Reverse(sort.IntSlice(jobs)))
	loads := make([]int64, workers)
	for _, j := range jobs {
		least := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[least] {
				least = w
			}
		}
		loads[least] += int64(j)
	}
	makespan := int64(0)
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	sum := int64(res.SumRadii())
	avgBound := (sum + int64(workers) - 1) / int64(workers)
	naive := int64(res.MaxRadius()) * int64(n) / int64(workers)

	lower := avgBound
	if int64(res.MaxRadius()) > lower {
		lower = int64(res.MaxRadius())
	}
	fmt.Printf("simulating %d vertex executions on %d workers\n", n, workers)
	fmt.Printf("  per-vertex work: max %d, avg %.2f\n", res.MaxRadius(), res.AvgRadius())
	fmt.Printf("  measured makespan:          %6d work units\n", makespan)
	fmt.Printf("  avg-measure bound:          %6d (= max(Σ r(v)/P, longest job))\n", lower)
	fmt.Printf("  worst-case capacity model:  %6d (= n·max/P)\n", naive)
	fmt.Printf("  makespan/avg-bound = %.2f; worst-case model overestimates by %.0fx\n",
		float64(makespan)/float64(lower), float64(naive)/float64(makespan))
	return nil
}
