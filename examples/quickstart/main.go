// Quickstart: run the paper's largest-ID pruning algorithm on a 64-cycle
// and print the two complexity measures it compares — the classic maximum
// radius and the new average radius.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/algorithms/largestid"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/measure"
	"repro/internal/problems"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 64
	ring, err := graph.NewCycle(n)
	if err != nil {
		return err
	}
	assignment := ids.Random(n, rand.New(rand.NewSource(2015)))

	// Every vertex grows its radius until it sees a larger identifier (it
	// answers "not the leader") or its view provably covers the whole ring
	// (it answers "leader").
	res, err := local.RunView(ring, assignment, largestid.Pruning{})
	if err != nil {
		return err
	}
	if err := (problems.LargestID{}).Verify(ring, assignment, res.Outputs); err != nil {
		return fmt.Errorf("outputs invalid: %w", err)
	}

	s := measure.Summarize(res.Radii)
	fmt.Printf("largest-ID pruning on C_%d\n", n)
	fmt.Printf("  classic measure  max_v r(v) = %d   (Θ(n): the max-ID vertex sees everything)\n", s.Max)
	fmt.Printf("  paper's measure  avg_v r(v) = %.2f (Θ(log n): most vertices stop immediately)\n", s.Avg)
	fmt.Printf("  median radius: %.1f, 90th percentile: %.1f\n", s.Median, s.P90)
	fmt.Println()
	fmt.Println("  radius histogram (radius: #vertices)")
	for r, count := range measure.Histogram(res.Radii) {
		if count > 0 {
			fmt.Printf("    %3d: %d\n", r, count)
		}
	}
	return nil
}
